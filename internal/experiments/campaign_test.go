package experiments

import (
	"io"
	"strings"
	"testing"

	"timedice/internal/policies"
	"timedice/internal/vtime"
)

// TestCampaignExactAndStreamingAgree runs the seed sweep through both
// aggregation paths: at this scale the sketches never leave their exact
// small-N regime, so the quantile columns must match bit for bit, and the
// means up to the parallel-combine rounding.
func TestCampaignExactAndStreamingAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	sc := tiny()
	sc.TestWindows = 320 // 8 seeds, the sweep floor
	exact, err := Campaign(sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sc.Stream = true
	var buf strings.Builder
	stream, err := Campaign(sc, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Streaming || !stream.Streaming {
		t.Fatal("Streaming flags wrong")
	}
	if len(exact.Rows) != 2 || len(stream.Rows) != 2 {
		t.Fatalf("rows: %d exact, %d stream", len(exact.Rows), len(stream.Rows))
	}
	for i, e := range exact.Rows {
		s := stream.Rows[i]
		if e.Policy != s.Policy || e.N != s.N {
			t.Fatalf("row %d identity mismatch", i)
		}
		if e.AccP10 != s.AccP10 || e.AccP50 != s.AccP50 || e.AccP90 != s.AccP90 || e.CapP90 != s.CapP90 {
			t.Errorf("row %d quantiles diverged: exact %+v stream %+v", i, e, s)
		}
		if d := e.AccMean - s.AccMean; d > 1e-12 || d < -1e-12 {
			t.Errorf("row %d mean diverged by %v", i, d)
		}
	}
	// The mitigation effect must be visible across seeds: TimeDiceW median
	// accuracy below NoRandom's.
	if exact.Rows[1].AccP50 >= exact.Rows[0].AccP50 {
		t.Errorf("TimeDiceW median accuracy %.3f not below NoRandom %.3f",
			exact.Rows[1].AccP50, exact.Rows[0].AccP50)
	}
	if !strings.Contains(buf.String(), "streaming aggregation") {
		t.Error("report does not mention the aggregation mode")
	}
}

// TestResponsivenessStreamMatchesExact pins the streaming per-task sketch
// path against buffered samples on the same run: identical schedules, and
// box plots within the sketch's documented accuracy.
func TestResponsivenessStreamMatchesExact(t *testing.T) {
	sc := tiny()
	spec := BaseLoad.Spec()
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	exact, err := RunResponsiveness(spec, policies.NoRandom, dur, sc.Seed, ResponsivenessOptions{Jitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunResponsiveness(spec, policies.NoRandom, dur, sc.Seed, ResponsivenessOptions{Jitter: 0.2, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exact.Tasks {
		s := stream.Tasks[i]
		if s.Sketch == nil || s.Samples != nil {
			t.Fatalf("task %s: streaming record shape wrong", s.Task)
		}
		if e.Summary.N() != s.Summary.N() || e.Misses != s.Misses {
			t.Fatalf("task %s: schedules diverged (n %d vs %d)", s.Task, e.Summary.N(), s.Summary.N())
		}
		eb, sb := e.Box(), s.Box()
		alpha := s.Sketch.Accuracy()
		check := func(name string, ev, sv float64) {
			if d := sv - ev; d > alpha*ev+1e-9 || d < -alpha*ev-1e-9 {
				t.Errorf("task %s %s: stream %v vs exact %v", s.Task, name, sv, ev)
			}
		}
		check("min", eb.Min, sb.Min)
		check("median", eb.Median, sb.Median)
		check("max", eb.Max, sb.Max)
		// Exact Box sums samples directly, the streaming path reads the
		// Welford Summary: same mean up to accumulation rounding.
		if d := sb.Mean - eb.Mean; d > 1e-9*eb.Mean || d < -1e-9*eb.Mean {
			t.Errorf("task %s mean: stream %v vs exact %v", s.Task, sb.Mean, eb.Mean)
		}
	}
}
