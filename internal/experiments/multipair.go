package experiments

import (
	"io"

	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// MultiPairResult measures two covert-channel pairs operating CONCURRENTLY
// in one system — each pair is noise for the other. The paper studies a
// single pair; this extension checks that (i) multiple pairs can coexist
// under NoRandom (each decodes well despite the other's modulation) and
// (ii) TimeDice degrades both at once.
type MultiPairResult struct {
	Policy    policies.Kind
	Accuracy1 float64 // pair 1: Π1 → Π3
	Accuracy2 float64 // pair 2: Π2 → Π4
	Windows   int
}

// MultiPair runs the scaled Table I system (10 partitions) hosting two
// sender/receiver pairs under the given policy.
func MultiPair(kind policies.Kind, windows int, seed uint64) (*MultiPairResult, error) {
	if windows <= 0 {
		windows = 800
	}
	if seed == 0 {
		seed = 1
	}
	spec := workload.Scale(workload.TableIBase(), 2) // 10 partitions
	parts := make([]model.PartitionSpec, len(spec.Partitions))
	copy(parts, spec.Partitions)
	for i := range parts {
		parts[i].Server = server.Deferrable
	}
	spec.Partitions = parts

	// Pair 1: sender index 1, receiver index 5 (period 20ms → window 150ms
	// uses receiver P4.1 (T=50) at index 6? — use indices with T_R=50ms).
	// Partitions after Scale: P1.1..P5.1, P1.2..P5.2 with priorities in
	// round-robin duplication order: indices 0..4 = copy 1, 5..9 = copy 2.
	const (
		sender1, receiver1 = 1, 3 // P2.1 → P4.1
		sender2, receiver2 = 6, 8 // P2.2 → P4.2
	)
	window := 3 * spec.Partitions[receiver1].Period

	root := rng.New(seed)
	bits1 := make([]int, windows+6)
	bits2 := make([]int, windows+6)
	for i := range bits1 {
		bits1[i] = root.Bit()
		bits2[i] = root.Bit()
	}

	// Instrument both pairs.
	for _, pair := range []struct {
		sender, receiver int
		bits             []int
	}{
		{sender1, receiver1, bits1},
		{sender2, receiver2, bits2},
	} {
		s := &spec.Partitions[pair.sender]
		s.Tasks = []model.TaskSpec{{Name: "sender", Period: window / 3, WCET: s.Budget}}
		r := &spec.Partitions[pair.receiver]
		supply := r.Budget.Scale(int64(window), int64(r.Period))
		demand := vtime.Duration(0.9 * float64(supply))
		if demand < vtime.Millisecond {
			demand = vtime.Millisecond
		}
		r.Tasks = []model.TaskSpec{{Name: "receiver", Period: window, WCET: demand, Deadline: 8 * window}}
	}

	built, err := spec.Build()
	if err != nil {
		return nil, err
	}
	attachSender := func(idx int, bits []int) {
		budget := spec.Partitions[idx].Budget
		tk := built.Task[model.TaskKey(spec.Partitions[idx].Name, "sender")]
		tk.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
			w := int(arrival / vtime.Time(window))
			if w >= len(bits) {
				w = len(bits) - 1
			}
			if bits[w] == 1 {
				return budget
			}
			return 10 * vtime.Microsecond
		}
	}
	attachSender(sender1, bits1)
	attachSender(sender2, bits2)

	resp1 := make(map[int64]vtime.Duration)
	resp2 := make(map[int64]vtime.Duration)
	built.Sched[spec.Partitions[receiver1].Name].OnComplete = func(c task.Completion) {
		resp1[c.Job.Index] = c.Response
	}
	built.Sched[spec.Partitions[receiver2].Name].OnComplete = func(c task.Completion) {
		resp2[c.Job.Index] = c.Response
	}

	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return nil, err
	}
	sys, err := engine.New(built.Partitions, pol, root.Split())
	if err != nil {
		return nil, err
	}
	sys.Run(vtime.Time(vtime.Duration(windows+6) * window))

	acc1 := thresholdDecode(resp1, bits1, windows)
	acc2 := thresholdDecode(resp2, bits2, windows)
	return &MultiPairResult{Policy: kind, Accuracy1: acc1, Accuracy2: acc2, Windows: windows}, nil
}

// thresholdDecode profiles per-bit response-time histograms (1 ms bins,
// Laplace-smoothed — the §III-b receiver) on the first half and classifies
// the second half by maximum likelihood. A plain mean threshold fails here:
// the OTHER pair's random modulation makes the ambient noise multimodal.
func thresholdDecode(resp map[int64]vtime.Duration, bits []int, windows int) float64 {
	half := windows / 2
	maxMS := 1
	for _, r := range resp {
		if ms := int(r / vtime.Millisecond); ms > maxMS {
			maxMS = ms
		}
	}
	bins := maxMS + 2
	var hist [2][]int
	hist[0] = make([]int, bins)
	hist[1] = make([]int, bins)
	var total [2]int
	for k := 0; k < half; k++ {
		r, ok := resp[int64(k)]
		if !ok {
			continue
		}
		b := bits[k]
		hist[b][int(r/vtime.Millisecond)]++
		total[b]++
	}
	if total[0] == 0 || total[1] == 0 {
		return 0
	}
	correct, n := 0, 0
	for k := half; k < windows; k++ {
		r, ok := resp[int64(k)]
		if !ok {
			continue
		}
		n++
		bin := int(r / vtime.Millisecond)
		best, bestScore := 0, -1.0
		for b := 0; b < 2; b++ {
			score := (float64(hist[b][bin]) + 1) / (float64(total[b]) + float64(bins))
			if score > bestScore {
				best, bestScore = b, score
			}
		}
		if best == bits[k] {
			correct++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(correct) / float64(n)
}

// MultiPairReport runs the comparison under NoRandom and TimeDiceW.
func MultiPairReport(sc Scale, w io.Writer) ([]*MultiPairResult, error) {
	sc = sc.withDefaults()
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceW}
	out, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (*MultiPairResult, error) {
		return MultiPair(kind, sc.TestWindows, sc.Seed)
	})
	if err != nil {
		return nil, err
	}
	fprintf(w, "Two concurrent covert pairs on the 10-partition system\n")
	fprintf(w, "%-10s %12s %12s\n", "policy", "pair1 acc", "pair2 acc")
	for _, res := range out {
		fprintf(w, "%-10s %11.2f%% %11.2f%%\n", res.Policy, 100*res.Accuracy1, 100*res.Accuracy2)
	}
	return out, nil
}
