package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// carSpec returns the Fig. 5 self-driving-car platform.
func carSpec() model.SystemSpec { return workload.Car() }

// CarChannelResult reproduces the §III-e motivating scenario and its §V-B1
// follow-up: the path-planning partition (Π3) leaks the vehicle's precise
// location to the data-logging partition (Π4) over the covert channel;
// enabling TimeDice collapses the accuracy (95.23% → 56.30% in the paper).
type CarChannelResult struct {
	NoRandomAccuracy float64
	TimeDiceAccuracy float64
	NoRandomCapacity float64
	TimeDiceCapacity float64
}

// CarChannel runs the learning-based channel on the car platform under both
// schedulers. The sender task uses a 50 ms period as in the paper.
func CarChannel(sc Scale, w io.Writer) (*CarChannelResult, error) {
	sc = sc.withDefaults()
	res := &CarChannelResult{}
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		cfg := covert.Config{
			Spec:     carSpec(),
			Sender:   2, // Π3 path planning
			Receiver: 3, // Π4 data logging
			// Receiver window 150 ms = 3·T4; sender period 50 ms (§III-e).
			Window:         vtime.MS(150),
			SenderPeriod:   vtime.MS(50),
			ProfileWindows: sc.ProfileWindows,
			TestWindows:    sc.TestWindows,
			Policy:         kind,
			Seed:           sc.Seed,
			// The car applications run their natural workloads; they are not
			// adversarially noisy like the synthetic feasibility test, so
			// their timing variation is small (§III-e achieved 95.23%).
			NoiseFraction: 0.05,
		}
		run, err := covert.Run(cfg, defaultLearner())
		if err != nil {
			return nil, err
		}
		acc := run.VecAccuracy[defaultLearner().Name()]
		if kind == policies.NoRandom {
			res.NoRandomAccuracy = acc
			res.NoRandomCapacity = run.Capacity
		} else {
			res.TimeDiceAccuracy = acc
			res.TimeDiceCapacity = run.Capacity
		}
	}
	fprintf(w, "Car platform covert channel (planner Π3 → logger Π4, learning-based):\n")
	fprintf(w, "NoRandom: accuracy %.2f%%, capacity %.3f b/window\n", 100*res.NoRandomAccuracy, res.NoRandomCapacity)
	fprintf(w, "TimeDice: accuracy %.2f%%, capacity %.3f b/window\n", 100*res.TimeDiceAccuracy, res.TimeDiceCapacity)
	return res, nil
}
