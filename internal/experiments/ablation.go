package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// AblationResult collects the sensitivity studies for the design choices
// DESIGN.md calls out: the randomization quantum (MIN_INV_SIZE), the budget
// server policy, the selection mode, and the multi-bit channel extension.
type AblationResult struct {
	Quantum   []QuantumPoint
	Servers   []ServerPoint
	Selection []SelectionPoint
	Levels    []LevelPoint
	Noise     []NoisePoint
}

// QuantumPoint measures the security/overhead trade-off of one quantum size.
type QuantumPoint struct {
	Quantum         vtime.Duration
	RTAccuracy      float64
	Capacity        float64
	DecisionsPerSec float64
}

// ServerPoint measures the channel under one budget-server policy.
type ServerPoint struct {
	Server     server.Policy
	RTAccuracy float64
	Capacity   float64
}

// SelectionPoint compares TimeDiceU vs TimeDiceW per load.
type SelectionPoint struct {
	Policy     policies.Kind
	Load       Load
	RTAccuracy float64
	Capacity   float64
}

// LevelPoint measures the multi-bit extension: symbol accuracy and the
// resulting bit rate (symbols carry log2(levels) bits).
type LevelPoint struct {
	Levels    int
	Accuracy  float64
	GuessRate float64
}

// NoisePoint measures channel strength against the noise partitions' timing
// variation, under both schedulers.
type NoisePoint struct {
	Fraction          float64
	NoRandomAccuracy  float64
	TimeDiceWAccuracy float64
	NoRandomCapacity  float64
	TimeDiceWCapacity float64
}

// Ablation runs all four sweeps at the given scale.
func Ablation(sc Scale, w io.Writer) (*AblationResult, error) {
	sc = sc.withDefaults()
	res := &AblationResult{}

	fprintf(w, "Ablation 1: randomization quantum (MIN_INV_SIZE), light load, TimeDiceW\n")
	fprintf(w, "%-10s %9s %9s %12s\n", "quantum", "RT acc", "capacity", "decisions/s")
	for _, q := range []vtime.Duration{vtime.FromFloatMS(0.5), vtime.MS(1), vtime.MS(2), vtime.MS(4)} {
		cfg := channelConfig(LightLoad, policies.TimeDiceW, sc)
		cfg.Quantum = q
		run, err := covert.Run(cfg)
		if err != nil {
			return nil, err
		}
		pt := QuantumPoint{
			Quantum:    q,
			RTAccuracy: run.RTAccuracy,
			Capacity:   run.Capacity,
		}
		pt.DecisionsPerSec, err = decisionRate(workload.TableILight(), q, sc.Seed)
		if err != nil {
			return nil, err
		}
		res.Quantum = append(res.Quantum, pt)
		fprintf(w, "%-10v %8.2f%% %9.3f %12.1f\n", q, 100*pt.RTAccuracy, pt.Capacity, pt.DecisionsPerSec)
	}

	fprintf(w, "\nAblation 2: budget-server policy, base load, NoRandom (channel strength)\n")
	fprintf(w, "%-12s %9s %9s\n", "server", "RT acc", "capacity")
	for _, srv := range []server.Policy{server.Polling, server.Deferrable, server.Sporadic} {
		cfg := channelConfig(BaseLoad, policies.NoRandom, sc)
		cfg.Servers = srv
		run, err := covert.Run(cfg)
		if err != nil {
			return nil, err
		}
		pt := ServerPoint{Server: srv, RTAccuracy: run.RTAccuracy, Capacity: run.Capacity}
		res.Servers = append(res.Servers, pt)
		fprintf(w, "%-12s %8.2f%% %9.3f\n", srv, 100*pt.RTAccuracy, pt.Capacity)
	}

	fprintf(w, "\nAblation 3: uniform vs weighted selection (Theorem 1)\n")
	fprintf(w, "%-10s %-11s %9s %9s\n", "policy", "load", "RT acc", "capacity")
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, kind := range []policies.Kind{policies.TimeDiceU, policies.TimeDiceW} {
			cfg := channelConfig(load, kind, sc)
			run, err := covert.Run(cfg)
			if err != nil {
				return nil, err
			}
			pt := SelectionPoint{Policy: kind, Load: load, RTAccuracy: run.RTAccuracy, Capacity: run.Capacity}
			res.Selection = append(res.Selection, pt)
			fprintf(w, "%-10s %-11s %8.2f%% %9.3f\n", kind, load, 100*pt.RTAccuracy, pt.Capacity)
		}
	}

	fprintf(w, "\nAblation 4: multi-bit channel (§III-a's multiple response-time levels), NoRandom base load\n")
	fprintf(w, "%-8s %10s %10s\n", "levels", "accuracy", "guess")
	for _, levels := range []int{2, 4, 8} {
		cfg := channelConfig(BaseLoad, policies.NoRandom, sc)
		cfg.Levels = levels
		run, err := covert.Run(cfg)
		if err != nil {
			return nil, err
		}
		pt := LevelPoint{Levels: levels, Accuracy: run.RTAccuracy, GuessRate: 1 / float64(levels)}
		res.Levels = append(res.Levels, pt)
		fprintf(w, "%-8d %9.2f%% %9.2f%%\n", levels, 100*pt.Accuracy, 100*pt.GuessRate)
	}

	fprintf(w, "\nAblation 5: noise sensitivity (noise partitions' timing variation)\n")
	fprintf(w, "%-8s %12s %12s %10s %10s\n", "noise", "NR acc", "TDW acc", "NR cap", "TDW cap")
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.40} {
		pt := NoisePoint{Fraction: frac}
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
			cfg := channelConfig(BaseLoad, kind, sc)
			cfg.NoiseFraction = frac
			run, err := covert.Run(cfg)
			if err != nil {
				return nil, err
			}
			if kind == policies.NoRandom {
				pt.NoRandomAccuracy, pt.NoRandomCapacity = run.RTAccuracy, run.Capacity
			} else {
				pt.TimeDiceWAccuracy, pt.TimeDiceWCapacity = run.RTAccuracy, run.Capacity
			}
		}
		res.Noise = append(res.Noise, pt)
		fprintf(w, "%-8.2f %11.2f%% %11.2f%% %10.3f %10.3f\n",
			frac, 100*pt.NoRandomAccuracy, 100*pt.TimeDiceWAccuracy, pt.NoRandomCapacity, pt.TimeDiceWCapacity)
	}
	return res, nil
}

// decisionRate measures the scheduling-decision rate of TimeDiceW with a
// given quantum on spec over two simulated seconds.
func decisionRate(spec model.SystemSpec, q vtime.Duration, seed uint64) (float64, error) {
	built, err := spec.Build()
	if err != nil {
		return 0, err
	}
	pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{Quantum: q})
	if err != nil {
		return 0, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return 0, err
	}
	const dur = 2 * vtime.Second
	sys.Run(vtime.Time(dur))
	return float64(sys.Counters.Decisions) / dur.Seconds(), nil
}
