package experiments

import (
	"io"

	"timedice/internal/analysis"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/stats"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// TaskResponse aggregates response-time observations for one task.
type TaskResponse struct {
	Partition, Task string
	Deadline        vtime.Duration
	Summary         stats.Summary
	Samples         []float64 // milliseconds, for box plots (exact mode)
	// Sketch replaces Samples under streaming aggregation
	// (ResponsivenessOptions.Stream): constant memory per task no matter how
	// long the run, with the sketch's documented quantile accuracy.
	Sketch *stats.Sketch
	Misses int64 // deadline misses observed
}

// Box returns the five-number summary of the observations: exact from the
// buffered samples, or sketch-estimated (mean from the streaming Summary)
// in streaming mode.
func (t *TaskResponse) Box() stats.BoxPlot {
	if t.Sketch != nil {
		if t.Sketch.N() == 0 {
			return stats.BoxPlot{}
		}
		qs := t.Sketch.Quantiles(0.25, 0.5, 0.75)
		return stats.BoxPlot{
			Min: t.Sketch.Min(), Q1: qs[0], Median: qs[1], Q3: qs[2],
			Max: t.Sketch.Max(), Mean: t.Summary.Mean(), N: int(t.Sketch.N()),
		}
	}
	return stats.Box(t.Samples)
}

// ResponsivenessResult is one policy's run over a system.
type ResponsivenessResult struct {
	Policy policies.Kind
	Tasks  []*TaskResponse
}

// Task returns the record for partition/task names.
func (r *ResponsivenessResult) Task(partition, taskName string) (*TaskResponse, bool) {
	for _, t := range r.Tasks {
		if t.Partition == partition && t.Task == taskName {
			return t, true
		}
	}
	return nil, false
}

// ResponsivenessOptions tune a run.
type ResponsivenessOptions struct {
	// Jitter varies task execution times downward and inter-arrivals upward
	// by up to the fraction, as the paper's benchmark does "for added
	// variations". Zero runs tasks at exact WCET/period (worst-case
	// pressure).
	Jitter float64
	// KeepSamples bounds the per-task stored samples (0 = keep all).
	// Ignored under Stream.
	KeepSamples int
	// Stream aggregates response times into per-task quantile sketches
	// instead of sample buffers: constant memory regardless of run length.
	Stream bool
}

// RunResponsiveness simulates spec under the policy for dur and collects
// per-task response times.
func RunResponsiveness(spec model.SystemSpec, kind policies.Kind, dur vtime.Duration, seed uint64, opts ResponsivenessOptions) (*ResponsivenessResult, error) {
	built, err := spec.Build()
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	res := &ResponsivenessResult{Policy: kind}

	records := make(map[string]*TaskResponse)
	for _, ps := range spec.Partitions {
		for _, ts := range ps.Tasks {
			deadline := ts.Deadline
			if deadline == 0 {
				deadline = ts.Period
			}
			rec := &TaskResponse{Partition: ps.Name, Task: ts.Name, Deadline: deadline}
			if opts.Stream {
				rec.Sketch = stats.NewSketch()
			}
			records[model.TaskKey(ps.Name, ts.Name)] = rec
			res.Tasks = append(res.Tasks, rec)

			if opts.Jitter > 0 {
				tk := built.Task[model.TaskKey(ps.Name, ts.Name)]
				wcet, period := tk.WCET, tk.Period
				jr := root.Split()
				frac := opts.Jitter
				tk.ExecFn = func(int64, vtime.Time) vtime.Duration {
					return vtime.Duration(float64(wcet) * (1 - frac*jr.Float64()))
				}
				tk.PeriodFn = func(int64, vtime.Time) vtime.Duration {
					return vtime.Duration(float64(period) * (1 + frac*jr.Float64()))
				}
			}
		}
	}
	for pname, sched := range built.Sched {
		pn := pname
		sched.OnComplete = func(c task.Completion) {
			rec := records[model.TaskKey(pn, c.Job.Task.Name)]
			ms := c.Response.Milliseconds()
			rec.Summary.Add(ms)
			if rec.Sketch != nil {
				rec.Sketch.Add(ms)
			} else if opts.KeepSamples <= 0 || len(rec.Samples) < opts.KeepSamples {
				rec.Samples = append(rec.Samples, ms)
			}
			if c.Response > rec.Deadline {
				rec.Misses++
			}
		}
	}

	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return nil, err
	}
	sys, err := engine.New(built.Partitions, pol, root.Split())
	if err != nil {
		return nil, err
	}
	sys.Run(vtime.Time(dur))
	return res, nil
}

// Fig16Result pairs the NoRandom and TimeDice box plots per task (Fig. 16).
type Fig16Result struct {
	NoRandom, TimeDice *ResponsivenessResult
}

// Fig16 runs the Table I benchmark under both policies with the paper's
// added timing variations and reports per-task response-time spreads.
func Fig16(sc Scale, w io.Writer) (*Fig16Result, error) {
	sc = sc.withDefaults()
	spec := BaseLoad.Spec()
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	// Streaming mode trades the 100k-sample buffers for constant-memory
	// per-task sketches (sc.Stream; exact remains the default).
	opts := ResponsivenessOptions{Jitter: 0.2, KeepSamples: 100000, Stream: sc.Stream}
	runs, err := runner.Map(sc.Parallel, []policies.Kind{policies.NoRandom, policies.TimeDiceW},
		func(_ int, kind policies.Kind) (*ResponsivenessResult, error) {
			return RunResponsiveness(spec, kind, dur, sc.Seed, opts)
		})
	if err != nil {
		return nil, err
	}
	nr, td := runs[0], runs[1]
	res := &Fig16Result{NoRandom: nr, TimeDice: td}
	fprintf(w, "Fig 16: task response times (ms), NoRandom (NR) vs TimeDice (TD)\n")
	fprintf(w, "%-10s %-28s %-28s\n", "task", "NR min/med/max (mean)", "TD min/med/max (mean)")
	for i, n := range nr.Tasks {
		tb, nb := td.Tasks[i].Box(), n.Box()
		fprintf(w, "%-10s %6.2f/%6.2f/%7.2f (%6.2f)  %6.2f/%6.2f/%7.2f (%6.2f)\n",
			n.Task, nb.Min, nb.Median, nb.Max, nb.Mean, tb.Min, tb.Median, tb.Max, tb.Mean)
	}
	return res, nil
}

// Table02Row is one row of Table II.
type Table02Row struct {
	Task                         string
	Deadline                     vtime.Duration
	AnalNR, AnalTD               vtime.Duration
	EmpirNR, EmpirTD             float64 // ms
	SchedulableNR, SchedulableTD bool
}

// Table02Result holds all rows.
type Table02Result struct {
	Rows []Table02Row
}

// Table02 computes the analytic WCRTs (both analyses) and measures empirical
// WCRTs from simulation, reproducing Table II. The empirical runs use exact
// WCETs and minimum inter-arrival times (worst-case pressure); as in the
// paper, empirical values typically sit below the analytic bounds.
func Table02(sc Scale, w io.Writer) (*Table02Result, error) {
	sc = sc.withDefaults()
	spec := BaseLoad.Spec()
	anal, err := analysis.AnalyzeSystem(spec)
	if err != nil {
		return nil, err
	}
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	// As in the paper's benchmark, tasks vary their execution times and
	// inter-arrival times for added variation; without it, the phase-locked
	// periodic schedule never visits the critical instants and the empirical
	// maxima stay far below the bounds.
	opts := ResponsivenessOptions{Jitter: 0.2}
	runs, err := runner.Map(sc.Parallel, []policies.Kind{policies.NoRandom, policies.TimeDiceW},
		func(_ int, kind policies.Kind) (*ResponsivenessResult, error) {
			return RunResponsiveness(spec, kind, dur, sc.Seed, opts)
		})
	if err != nil {
		return nil, err
	}
	nr, td := runs[0], runs[1]
	res := &Table02Result{}
	fprintf(w, "Table II: analytic vs empirical WCRT (ms)\n")
	fprintf(w, "%-8s %9s | %9s %9s | %9s %9s | %8s %8s\n",
		"task", "deadline", "NR anal", "NR empr", "TD anal", "TD empr", "dAnal", "dEmpr")
	for i, a := range anal {
		row := Table02Row{
			Task:     a.Task,
			Deadline: a.Deadline,
			AnalNR:   a.NoRandom,
			AnalTD:   a.TimeDice,
			EmpirNR:  nr.Tasks[i].Summary.Max(),
			EmpirTD:  td.Tasks[i].Summary.Max(),
		}
		row.SchedulableNR = row.AnalNR <= row.Deadline
		row.SchedulableTD = row.AnalTD <= row.Deadline
		res.Rows = append(res.Rows, row)
		fprintf(w, "%-8s %9.2f | %9.2f %9.2f | %9.2f %9.2f | %8.2f %8.2f\n",
			row.Task, row.Deadline.Milliseconds(),
			row.AnalNR.Milliseconds(), row.EmpirNR,
			row.AnalTD.Milliseconds(), row.EmpirTD,
			row.AnalTD.Milliseconds()-row.AnalNR.Milliseconds(), row.EmpirTD-row.EmpirNR)
	}
	return res, nil
}

// Table03Row is one application row of Table III.
type Table03Row struct {
	App                string
	Deadline           vtime.Duration
	NR, TD             struct{ Avg, Std, Max float64 }
	MissesNR, MissesTD int64
}

// Table03Result holds the car-platform responsiveness comparison.
type Table03Result struct {
	Rows []Table03Row
}

// Table03 measures the prototype self-driving applications' response times
// under NoRandom and TimeDice (the logger is excluded, as in the paper).
func Table03(sc Scale, w io.Writer) (*Table03Result, error) {
	sc = sc.withDefaults()
	spec := carSpec()
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	nr, err := RunResponsiveness(spec, policies.NoRandom, dur, sc.Seed, ResponsivenessOptions{Jitter: 0.2, KeepSamples: 1})
	if err != nil {
		return nil, err
	}
	td, err := RunResponsiveness(spec, policies.TimeDiceW, dur, sc.Seed, ResponsivenessOptions{Jitter: 0.2, KeepSamples: 1})
	if err != nil {
		return nil, err
	}
	labels := map[string]string{
		"behavior": "Behavior control",
		"vision":   "Vision-based steering",
		"planner":  "Path planning",
	}
	res := &Table03Result{}
	fprintf(w, "Table III: car-platform responsiveness (ms)\n")
	fprintf(w, "%-22s %8s | %7s %7s %7s | %7s %7s %7s\n",
		"application", "deadline", "NR avg", "NR std", "NR max", "TD avg", "TD std", "TD max")
	for i, n := range nr.Tasks {
		label, ok := labels[n.Partition]
		if !ok {
			continue // the data logger is not measured
		}
		t := td.Tasks[i]
		row := Table03Row{App: label, Deadline: n.Deadline, MissesNR: n.Misses, MissesTD: t.Misses}
		row.NR.Avg, row.NR.Std, row.NR.Max = n.Summary.Mean(), n.Summary.Std(), n.Summary.Max()
		row.TD.Avg, row.TD.Std, row.TD.Max = t.Summary.Mean(), t.Summary.Std(), t.Summary.Max()
		res.Rows = append(res.Rows, row)
		fprintf(w, "%-22s %8.0f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
			row.App, row.Deadline.Milliseconds(),
			row.NR.Avg, row.NR.Std, row.NR.Max, row.TD.Avg, row.TD.Std, row.TD.Max)
	}
	return res, nil
}
