package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/stats"
)

// CampaignRow summarizes one policy's channel metrics across the seed
// sweep: mean ± std plus the p10/p50/p90 spread of the RT-decoder accuracy
// and the mean and p90 of channel capacity.
type CampaignRow struct {
	Policy                 policies.Kind
	N                      int
	AccMean, AccStd        float64
	AccP10, AccP50, AccP90 float64
	CapMean, CapP90        float64
}

// CampaignResult is the cross-seed robustness report.
type CampaignResult struct {
	Rows []CampaignRow
	// Streaming records which aggregation path produced the rows: exact
	// per-seed collection (default) or constant-memory sketch merging.
	Streaming bool
}

// campaignSeedCount sizes the sweep from the scale: one seed per 40 test
// windows, clamped to [8, 64].
func campaignSeedCount(sc Scale) int {
	n := sc.TestWindows / 40
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// Campaign sweeps the standard feasibility channel across many independent
// seeds for NoRandom and TimeDiceW and reports the cross-seed spread of the
// channel metrics — the robustness view behind the single-seed figures.
// With sc.Stream the per-seed metrics are folded through per-worker
// quantile sketches merged at fan-in (covert.RunSeedsStream), so memory is
// independent of the sweep size; by default the per-seed results are
// collected and the quantiles computed exactly. At this sweep's scale the
// sketches are still in their exact small-N regime, so both paths print
// identical quantiles; means can differ in the last floating-point digits
// (parallel Welford combine).
func Campaign(sc Scale, w io.Writer) (*CampaignResult, error) {
	sc = sc.withDefaults()
	n := campaignSeedCount(sc)
	root := rng.New(sc.Seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}

	res := &CampaignResult{Streaming: sc.Stream}
	mode := "exact"
	if sc.Stream {
		mode = "streaming"
	}
	fprintf(w, "Campaign: channel metrics across %d seeds (%s aggregation)\n", n, mode)
	fprintf(w, "%-10s %18s %24s %10s %8s\n",
		"policy", "accuracy mean±std", "accuracy p10/p50/p90", "cap mean", "cap p90")
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		cfg := channelConfig(BaseLoad, kind, sc)
		row := CampaignRow{Policy: kind, N: n}
		if sc.Stream {
			sa, err := covert.RunSeedsStream(cfg, seeds, sc.Parallel)
			if err != nil {
				return nil, err
			}
			row.AccMean, row.AccStd = sa.RTAccuracy.Mean(), sa.RTAccuracy.Std()
			accQ := sa.RTAccuracyQ.Quantiles(0.1, 0.5, 0.9)
			row.AccP10, row.AccP50, row.AccP90 = accQ[0], accQ[1], accQ[2]
			row.CapMean = sa.Capacity.Mean()
			row.CapP90 = sa.CapacityQ.Quantile(0.9)
		} else {
			results, err := covert.CollectSeeds(cfg, seeds, sc.Parallel)
			if err != nil {
				return nil, err
			}
			accs := make([]float64, len(results))
			caps := make([]float64, len(results))
			var accSum stats.Summary
			var capSum stats.Summary
			for i, r := range results {
				accs[i] = r.RTAccuracy
				caps[i] = r.Capacity
				accSum.Add(r.RTAccuracy)
				capSum.Add(r.Capacity)
			}
			row.AccMean, row.AccStd = accSum.Mean(), accSum.Std()
			accQ := stats.Quantiles(accs, 0.1, 0.5, 0.9)
			row.AccP10, row.AccP50, row.AccP90 = accQ[0], accQ[1], accQ[2]
			row.CapMean = capSum.Mean()
			row.CapP90 = stats.Quantile(caps, 0.9)
		}
		res.Rows = append(res.Rows, row)
		fprintf(w, "%-10s %8.2f%% ± %5.2f%%  %6.2f%%/%6.2f%%/%6.2f%% %10.3f %8.3f\n",
			kind, 100*row.AccMean, 100*row.AccStd,
			100*row.AccP10, 100*row.AccP50, 100*row.AccP90,
			row.CapMean, row.CapP90)
	}
	return res, nil
}
