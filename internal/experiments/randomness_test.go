package experiments

import (
	"io"
	"testing"

	"timedice/internal/policies"
)

func TestRandomnessOrdering(t *testing.T) {
	res, err := Randomness(Scale{SimSeconds: 10, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, load := range []Load{BaseLoad, LightLoad} {
		nr, _ := res.Row(policies.NoRandom, load)
		tdu, _ := res.Row(policies.TimeDiceU, load)
		tdw, _ := res.Row(policies.TimeDiceW, load)
		if tdu.SlotEntropy <= nr.SlotEntropy || tdw.SlotEntropy <= nr.SlotEntropy {
			t.Errorf("%v: TimeDice entropies (%.3f/%.3f) must exceed NoRandom (%.3f)",
				load, tdu.SlotEntropy, tdw.SlotEntropy, nr.SlotEntropy)
		}
		if tdw.SlotEntropy > tdw.EntropyBound {
			t.Errorf("%v: entropy above bound", load)
		}
		if tdw.ExhaustionStdMS <= nr.ExhaustionStdMS {
			t.Errorf("%v: TimeDiceW exhaustion spread %.3f should exceed NoRandom %.3f",
				load, tdw.ExhaustionStdMS, nr.ExhaustionStdMS)
		}
	}
	// Theorem 1's contrast is most visible under light load: weighted
	// selection defers consumption (later mean exhaustion) vs uniform.
	tduL, _ := res.Row(policies.TimeDiceU, LightLoad)
	tdwL, _ := res.Row(policies.TimeDiceW, LightLoad)
	if tdwL.ExhaustionMeanMS <= tduL.ExhaustionMeanMS {
		t.Errorf("light load: TimeDiceW mean exhaustion %.2fms should exceed TimeDiceU %.2fms",
			tdwL.ExhaustionMeanMS, tduL.ExhaustionMeanMS)
	}
}
