package experiments

import (
	"io"
	"strings"
	"testing"

	"timedice/internal/policies"
)

// tiny returns a scale small enough for unit tests while preserving shapes.
func tiny() Scale {
	return Scale{ProfileWindows: 200, TestWindows: 400, SimSeconds: 10, Seed: 1}
}

func TestFig04ChannelWorks(t *testing.T) {
	res, err := Fig04(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separation < 0.5 {
		t.Errorf("profile separation %.3f, want clearly separated under NoRandom", res.Separation)
	}
	if res.DensityDistance < 0.05 {
		t.Errorf("heatmap density distance %.3f, want visible pattern difference", res.DensityDistance)
	}
	if len(res.Accuracy) != 8 {
		t.Fatalf("accuracy points = %d, want 8", len(res.Accuracy))
	}
	// At the largest profile size, both loads decode far above chance, and
	// accuracy grows (weakly) with profiling effort.
	for _, load := range []Load{BaseLoad, LightLoad} {
		var first, last float64
		n := 0
		for _, pt := range res.Accuracy {
			if pt.Load != load {
				continue
			}
			if n == 0 {
				first = pt.RTAccuracy
			}
			last = pt.RTAccuracy
			n++
		}
		if last < 0.75 {
			t.Errorf("%v: final RT accuracy %.3f, want >= 0.75", load, last)
		}
		if last+0.1 < first {
			t.Errorf("%v: accuracy degraded with more profiling (%.3f -> %.3f)", load, first, last)
		}
	}
}

func TestFig12MitigationShape(t *testing.T) {
	res, err := Fig12(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []Load{BaseLoad, LightLoad} {
		nr, ok1 := res.Cell(policies.NoRandom, load)
		tdw, ok2 := res.Cell(policies.TimeDiceW, load)
		tdu, ok3 := res.Cell(policies.TimeDiceU, load)
		if !ok1 || !ok2 || !ok3 {
			t.Fatal("missing cells")
		}
		// TimeDice must knock accuracy down substantially from NoRandom.
		if tdw.RTAccuracy > nr.RTAccuracy-0.15 {
			t.Errorf("%v: TimeDiceW RT accuracy %.3f vs NoRandom %.3f — insufficient mitigation",
				load, tdw.RTAccuracy, nr.RTAccuracy)
		}
		if tdu.RTAccuracy > nr.RTAccuracy-0.10 {
			t.Errorf("%v: TimeDiceU RT accuracy %.3f vs NoRandom %.3f", load, tdu.RTAccuracy, nr.RTAccuracy)
		}
		// Capacity collapses under randomization.
		if tdw.Capacity > nr.Capacity/2 {
			t.Errorf("%v: TimeDiceW capacity %.3f vs NoRandom %.3f", load, tdw.Capacity, nr.Capacity)
		}
	}
	// TimeDice pushes light-load accuracy close to a random guess (§V-B1:
	// "not significantly better than a random guess").
	tdwLight, _ := res.Cell(policies.TimeDiceW, LightLoad)
	if tdwLight.RTAccuracy > 0.72 {
		t.Errorf("TimeDiceW light-load RT accuracy %.3f, want near chance", tdwLight.RTAccuracy)
	}
}

func TestFig13HeatmapCollapse(t *testing.T) {
	res, err := Fig13(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeDiceWDistance >= res.NoRandomDistance {
		t.Errorf("TimeDiceW density distance %.4f should be below NoRandom %.4f",
			res.TimeDiceWDistance, res.NoRandomDistance)
	}
	if res.Heatmap == "" {
		t.Error("missing heatmap sample")
	}
}

func TestFig14DistributionShapes(t *testing.T) {
	res, err := Fig14(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	nr, _ := res.Row(policies.NoRandom)
	tdu, _ := res.Row(policies.TimeDiceU)
	tdw, _ := res.Row(policies.TimeDiceW)
	if tdu.Separation >= nr.Separation {
		t.Errorf("TimeDiceU separation %.3f should be below NoRandom %.3f", tdu.Separation, nr.Separation)
	}
	if tdw.Separation >= nr.Separation {
		t.Errorf("TimeDiceW separation %.3f should be below NoRandom %.3f", tdw.Separation, nr.Separation)
	}
	// TimeDice widens the response-time support (more uncertainty).
	if tdw.Spread <= nr.Spread {
		t.Errorf("TimeDiceW support %d bins should exceed NoRandom %d", tdw.Spread, nr.Spread)
	}
}

func TestFig15CapacityOrdering(t *testing.T) {
	res, err := Fig15(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []Load{BaseLoad, LightLoad} {
		nr, _ := res.Bar(policies.NoRandom, load)
		tdw, _ := res.Bar(policies.TimeDiceW, load)
		tdma, _ := res.Bar(policies.TDMA, load)
		if nr < 0.5 {
			t.Errorf("%v: NoRandom capacity %.3f, want high", load, nr)
		}
		if tdw > nr/2 {
			t.Errorf("%v: TimeDiceW capacity %.3f vs NoRandom %.3f", load, tdw, nr)
		}
		if tdma > 0.05 {
			t.Errorf("%v: TDMA capacity %.3f, want ≈0 (static partitioning removes the channel)", load, tdma)
		}
	}
}

func TestFig06Traces(t *testing.T) {
	res, err := Fig06(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.NoRandomGantt, "P1") || !strings.Contains(res.TimeDiceGantt, "P3") {
		t.Error("gantt output missing partitions")
	}
	if res.TimeDiceSwitches <= res.NoRandomSwitches {
		t.Errorf("TimeDice switches %d should exceed NoRandom %d",
			res.TimeDiceSwitches, res.NoRandomSwitches)
	}
}

func TestFig16ResponseTimes(t *testing.T) {
	res, err := Fig16(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NoRandom.Tasks) != 25 || len(res.TimeDice.Tasks) != 25 {
		t.Fatalf("task counts: %d / %d", len(res.NoRandom.Tasks), len(res.TimeDice.Tasks))
	}
	widened := 0
	for i, n := range res.NoRandom.Tasks {
		td := res.TimeDice.Tasks[i]
		if n.Misses > 0 || td.Misses > 0 {
			t.Errorf("task %s missed deadlines: NR=%d TD=%d", n.Task, n.Misses, td.Misses)
		}
		nb, tb := n.Box(), td.Box()
		if tb.Max-tb.Min > nb.Max-nb.Min {
			widened++
		}
	}
	// "the range of response times is likely to extend with TimeDice" — most
	// tasks should show a wider spread.
	if widened < 15 {
		t.Errorf("only %d/25 tasks widened their response-time range under TimeDice", widened)
	}
}

func TestTable02EmpiricalWithinAnalytic(t *testing.T) {
	res, err := Table02(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	spec := BaseLoad.Spec()
	for i, row := range res.Rows {
		if !row.SchedulableNR || !row.SchedulableTD {
			t.Errorf("%s: reported unschedulable", row.Task)
		}
		// Soundness: the simulator has zero kernel overhead, so empirical
		// WCRTs must not exceed the analytic bounds — up to the polling
		// server's idle-discard slack. The analyses (and the paper's
		// Table II) model the critical instant as "budget depleted by
		// execution as early as possible" (initial delay T−B); a polling
		// server that DISCARDS budget at an idle replenishment makes a job
		// arriving just afterwards wait up to T, i.e. up to B_i longer.
		// The paper observed the same small excess empirically (τ1,1).
		slack := spec.Partitions[i/5].Budget.Milliseconds()
		if row.EmpirNR > row.AnalNR.Milliseconds()+slack {
			t.Errorf("%s: empirical NR %.3f exceeds analytic %.3f + discard slack %.3f",
				row.Task, row.EmpirNR, row.AnalNR.Milliseconds(), slack)
		}
		if row.EmpirTD > row.AnalTD.Milliseconds()+slack {
			t.Errorf("%s: empirical TD %.3f exceeds analytic %.3f + discard slack %.3f",
				row.Task, row.EmpirTD, row.AnalTD.Milliseconds(), slack)
		}
		// TimeDice's analytic WCRT dominates NoRandom's.
		if row.AnalTD < row.AnalNR {
			t.Errorf("%s: TD analytic below NR analytic", row.Task)
		}
	}
}

func TestTable03CarStaysSchedulable(t *testing.T) {
	res, err := Table03(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (logger excluded)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MissesNR > 0 || row.MissesTD > 0 {
			t.Errorf("%s: deadline misses NR=%d TD=%d", row.App, row.MissesNR, row.MissesTD)
		}
		if row.TD.Avg < row.NR.Avg {
			t.Logf("%s: TD avg %.2f below NR avg %.2f (allowed, but unusual)", row.App, row.TD.Avg, row.NR.Avg)
		}
		if row.TD.Max > row.Deadline.Milliseconds() {
			t.Errorf("%s: TD max %.2f exceeds deadline %v", row.App, row.TD.Max, row.Deadline)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	sc := tiny()
	sc.SimSeconds = 5
	res, err := Overhead(sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, n := range []int{5, 10, 20} {
		nr, ok1 := res.Row(n, policies.NoRandom)
		td, ok2 := res.Row(n, policies.TimeDiceW)
		if !ok1 || !ok2 {
			t.Fatal("missing rows")
		}
		// Randomization makes decisions and switches more frequent (Table V).
		if td.DecisionsPerSec <= nr.DecisionsPerSec {
			t.Errorf("|Pi|=%d: TD decisions/s %.0f <= NR %.0f", n, td.DecisionsPerSec, nr.DecisionsPerSec)
		}
		if td.SwitchesPerSec <= nr.SwitchesPerSec {
			t.Errorf("|Pi|=%d: TD switches/s %.0f <= NR %.0f", n, td.SwitchesPerSec, nr.SwitchesPerSec)
		}
		// The search is bounded by one test per partition per decision.
		if td.SchedTestsPerDecision > float64(n) {
			t.Errorf("|Pi|=%d: %.2f tests/decision exceeds |Pi|", n, td.SchedTestsPerDecision)
		}
	}
	// Per-decision latency grows with system size (Table IV trend).
	td5, _ := res.Row(5, policies.TimeDiceW)
	td20, _ := res.Row(20, policies.TimeDiceW)
	if td20.P50 < td5.P50 {
		t.Errorf("median decision latency should grow with |Pi|: 5→%.3fus, 20→%.3fus", td5.P50, td20.P50)
	}
}

func TestFig18BlinderComparison(t *testing.T) {
	res, err := Fig18(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderNoDefense < 0.95 {
		t.Errorf("order channel without defense: %.3f", res.OrderNoDefense)
	}
	if res.OrderBlinder > 0.62 {
		t.Errorf("BLINDER should close the order channel, got %.3f", res.OrderBlinder)
	}
	if res.ResponseBlinder < 0.9 {
		t.Errorf("BLINDER must NOT close the time channel, got %.3f", res.ResponseBlinder)
	}
	if res.OrderTimeDice > 0.85 {
		t.Errorf("TimeDice should degrade the order channel, got %.3f", res.OrderTimeDice)
	}
	if res.PaperChannelBlinder < 0.75 {
		t.Errorf("paper's channel under BLINDER should stay decodable, got %.3f", res.PaperChannelBlinder)
	}
}

func TestCarChannelMitigation(t *testing.T) {
	res, err := CarChannel(tiny(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.NoRandomAccuracy < 0.85 {
		t.Errorf("car channel NoRandom accuracy %.3f, want high (paper: 95.23%%)", res.NoRandomAccuracy)
	}
	// The clean simulator leaves the SVM more residual signal than the
	// paper's noisy platform (they reach 56%); the reproducible shape is a
	// clear drop in accuracy and a collapse in capacity.
	if res.TimeDiceAccuracy > res.NoRandomAccuracy-0.04 {
		t.Errorf("car channel TimeDice accuracy %.3f vs NoRandom %.3f — insufficient drop",
			res.TimeDiceAccuracy, res.NoRandomAccuracy)
	}
	if res.TimeDiceCapacity > 0.8*res.NoRandomCapacity {
		t.Errorf("car channel TimeDice capacity %.3f vs NoRandom %.3f — insufficient drop",
			res.TimeDiceCapacity, res.NoRandomCapacity)
	}
}

func TestScaleDefaults(t *testing.T) {
	var s Scale
	d := s.withDefaults()
	if d.ProfileWindows == 0 || d.TestWindows == 0 || d.SimSeconds == 0 || d.Seed == 0 {
		t.Error("defaults not applied")
	}
	if Full().TestWindows != 10000 {
		t.Error("Full scale should use the paper's 10,000 test samples")
	}
	if Quick().TestWindows <= 0 {
		t.Error("quick scale broken")
	}
}

func TestLoadSpec(t *testing.T) {
	if BaseLoad.String() != "Base load" || LightLoad.String() != "Light load" {
		t.Error("load names")
	}
	if BaseLoad.Spec().Utilization() <= LightLoad.Spec().Utilization() {
		t.Error("base load must exceed light load")
	}
}
