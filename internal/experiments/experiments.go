// Package experiments contains one harness per table and figure of the
// paper's evaluation (§III feasibility and §V). Each harness builds the
// right workload, runs the simulator, and returns a structured result whose
// String/Print form mirrors the rows or series the paper reports. The bench
// targets in the repository root and the cmd/ binaries are thin wrappers
// around these harnesses.
package experiments

import (
	"fmt"
	"io"

	"timedice/internal/covert"
	"timedice/internal/ml"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/workload"
)

// Scale controls experiment sizes so the same harness serves quick tests,
// benches, and full paper-scale runs.
type Scale struct {
	// ProfileWindows and TestWindows size covert-channel phases.
	ProfileWindows, TestWindows int
	// SimSeconds is the simulated duration of responsiveness/overhead runs.
	SimSeconds int
	Seed       uint64
	// Parallel is the number of worker goroutines independent trials fan out
	// across: 0 (the default) uses one worker per available CPU, 1 forces a
	// sequential run, n > 1 uses exactly n workers. Every trial is a
	// self-contained deterministic simulation, so the setting changes
	// wall-clock time only — results are identical at any parallelism.
	Parallel int
	// Stream switches the experiments that aggregate many samples or trials
	// (Fig. 16 responsiveness spreads, the Campaign seed sweep) to
	// constant-memory streaming aggregation: per-task/per-worker quantile
	// sketches (stats.Sketch) instead of buffered samples. Off by default —
	// the exact path remains authoritative for paper tables; streamed
	// quantiles carry the sketch's documented ≤1% relative error once a
	// series outgrows the sketch's exact small-N buffer.
	Stream bool
	// ShardWorkers, when > 1, steps each trial's simulation itself sharded
	// across that many OS threads (covert.Config.ShardWorkers →
	// engine.System.SetSharding). Sharded stepping is exact, so like
	// Parallel it changes wall-clock time only; unlike Parallel it helps
	// even when one trial dominates the run.
	ShardWorkers int
}

// Full is the paper-scale configuration (10,000 test samples; long runs).
func Full() Scale {
	return Scale{ProfileWindows: 2000, TestWindows: 10000, SimSeconds: 600, Seed: 1}
}

// Quick is a reduced scale for tests and benches: same shapes, smaller n.
func Quick() Scale {
	return Scale{ProfileWindows: 300, TestWindows: 600, SimSeconds: 20, Seed: 1}
}

func (s Scale) withDefaults() Scale {
	if s.ProfileWindows <= 0 {
		s.ProfileWindows = 300
	}
	if s.TestWindows <= 0 {
		s.TestWindows = 600
	}
	if s.SimSeconds <= 0 {
		s.SimSeconds = 20
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Load selects the two system-load configurations of the feasibility test.
type Load int

const (
	// BaseLoad is Table I with α=16% (80% total partition utilization).
	BaseLoad Load = iota + 1
	// LightLoad halves budgets and execution times (40% utilization).
	LightLoad
)

// String names the load as the paper does.
func (l Load) String() string {
	if l == LightLoad {
		return "Light load"
	}
	return "Base load"
}

// Spec returns the Table I variant for the load.
func (l Load) Spec() model.SystemSpec {
	if l == LightLoad {
		return workload.TableILight()
	}
	return workload.TableIBase()
}

// channelConfig assembles the standard feasibility-test channel on Table I:
// sender Π2, receiver Π4, 150 ms monitoring windows, M = 150.
func channelConfig(load Load, kind policies.Kind, sc Scale) covert.Config {
	return covert.Config{
		Spec:           load.Spec(),
		Sender:         1, // Π2
		Receiver:       3, // Π4
		ProfileWindows: sc.ProfileWindows,
		TestWindows:    sc.TestWindows,
		Policy:         kind,
		Seed:           sc.Seed,
		ShardWorkers:   sc.ShardWorkers,
	}
}

// defaultLearner is the paper's execution-vector classifier.
func defaultLearner() ml.Trainer { return ml.SVM{} }

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
