package experiments

import (
	"io"

	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// OverheadRow aggregates the scheduling-overhead metrics for one system size
// and policy: Table IV (per-decision latency percentiles), Table V
// (decisions and switches per second of schedule), and Fig. 17 (total policy
// time per second of schedule).
type OverheadRow struct {
	Partitions int
	Policy     policies.Kind

	// Latency percentiles of a single scheduling decision, in microseconds
	// of wall-clock time of this Go implementation (Table IV).
	P25, P50, P75, P99, Max float64

	DecisionsPerSec float64
	SwitchesPerSec  float64
	// PolicyMicrosPerSec is the wall-clock µs spent inside the policy per
	// simulated second (the Fig. 17 series).
	PolicyMicrosPerSec float64
	// SchedTestsPerDecision is the mean number of Algorithm-3 invocations
	// per decision (bounded by |Π|).
	SchedTestsPerDecision float64
}

// OverheadResult holds the grid over |Π| ∈ {5, 10, 20} × {NoRandom,
// TimeDiceW}.
type OverheadRowKey struct {
	Partitions int
	Policy     policies.Kind
}

// OverheadResult indexes rows by (partitions, policy).
type OverheadResult struct {
	Rows []OverheadRow
}

// Row returns the row for (n, kind).
func (r *OverheadResult) Row(n int, kind policies.Kind) (OverheadRow, bool) {
	for _, row := range r.Rows {
		if row.Partitions == n && row.Policy == kind {
			return row, true
		}
	}
	return OverheadRow{}, false
}

// Overhead measures scheduling overhead on the Table I system duplicated to
// 5, 10, and 20 partitions (utilization held constant), under NoRandom and
// TimeDice, reproducing Tables IV and V and Fig. 17.
func Overhead(sc Scale, w io.Writer) (*OverheadResult, error) {
	sc = sc.withDefaults()
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	type trial struct {
		mult int
		kind policies.Kind
	}
	var trials []trial
	for _, mult := range []int{1, 2, 4} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
			trials = append(trials, trial{mult: mult, kind: kind})
		}
	}
	// Note: the latency percentiles are wall-clock measurements of this Go
	// implementation, so running trials concurrently adds scheduling noise to
	// Table IV. The rates (Table V) and the simulated schedule itself are
	// deterministic regardless.
	rows, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (OverheadRow, error) {
		spec := workload.Scale(workload.TableIBase(), tr.mult)
		return overheadRun(spec, tr.kind, dur, sc.Seed)
	})
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{Rows: rows}

	fprintf(w, "Table IV: end-to-end latency of one scheduling decision (us, this Go implementation)\n")
	fprintf(w, "%-6s %-10s %8s %8s %8s %8s %8s\n", "|Pi|", "policy", "25%", "50%", "75%", "99%", "100%")
	for _, row := range res.Rows {
		if row.Policy != policies.TimeDiceW {
			continue
		}
		fprintf(w, "%-6d %-10s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			row.Partitions, row.Policy, row.P25, row.P50, row.P75, row.P99, row.Max)
	}
	fprintf(w, "\nTable V: scheduling decisions and partition switches per second\n")
	fprintf(w, "%-6s %-10s %14s %14s %12s\n", "|Pi|", "policy", "decisions/s", "switches/s", "tests/dec")
	for _, row := range res.Rows {
		fprintf(w, "%-6d %-10s %14.2f %14.2f %12.2f\n",
			row.Partitions, row.Policy, row.DecisionsPerSec, row.SwitchesPerSec, row.SchedTestsPerDecision)
	}
	fprintf(w, "\nFig 17: policy time per second of schedule (us/s)\n")
	for _, row := range res.Rows {
		if row.Policy != policies.TimeDiceW {
			continue
		}
		fprintf(w, "|Pi|=%-3d %10.1f us/s (%.4f%%)\n",
			row.Partitions, row.PolicyMicrosPerSec, row.PolicyMicrosPerSec/1e4)
	}
	return res, nil
}

func overheadRun(spec model.SystemSpec, kind policies.Kind, dur vtime.Duration, seed uint64) (OverheadRow, error) {
	built, err := spec.Build()
	if err != nil {
		return OverheadRow{}, err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return OverheadRow{}, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return OverheadRow{}, err
	}
	sys.MeasureLatency = true
	sys.Run(vtime.Time(dur))

	c := sys.Counters
	secs := dur.Seconds()
	row := OverheadRow{
		Partitions:         len(spec.Partitions),
		Policy:             kind,
		DecisionsPerSec:    float64(c.Decisions) / secs,
		SwitchesPerSec:     float64(c.Switches) / secs,
		PolicyMicrosPerSec: float64(c.PolicyTime.Microseconds()) / secs,
	}
	if h := c.PolicyLatency; h != nil && h.Count() > 0 {
		// Streaming histogram (constant memory): quantiles are interpolated
		// inside fixed buckets instead of read from a raw sample slice.
		row.P25, row.P50, row.P75, row.P99, row.Max =
			h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75), h.Quantile(0.99), h.Max()
	}
	if td, ok := pol.(*core.Policy); ok {
		st := td.Stats()
		if st.Decisions > 0 {
			row.SchedTestsPerDecision = float64(st.SchedTests) / float64(st.Decisions)
		}
	}
	return row, nil
}
