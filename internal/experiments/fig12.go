package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/trace"
)

// Fig12Cell is one cell of the Fig. 12 grid: one policy × load × profile
// size, with both receiver types.
type Fig12Cell struct {
	Policy         policies.Kind
	Load           Load
	ProfileWindows int
	RTAccuracy     float64
	VectorAccuracy float64
	Capacity       float64
	Separation     float64
}

// Fig12Result holds the whole mitigation grid (and doubles as the data
// source for Fig. 15, which plots the Capacity column).
type Fig12Result struct {
	Cells []Fig12Cell
}

// Cell returns the cell for (policy, load) at the largest profile size.
func (r *Fig12Result) Cell(k policies.Kind, l Load) (Fig12Cell, bool) {
	var best Fig12Cell
	found := false
	for _, c := range r.Cells {
		if c.Policy == k && c.Load == l && (!found || c.ProfileWindows > best.ProfileWindows) {
			best = c
			found = true
		}
	}
	return best, found
}

// Fig12 measures the impact of TimeDice on covert-channel accuracy:
// NoRandom vs TimeDiceU vs TimeDiceW, base and light load, response-time and
// execution-vector receivers, as a function of profiling effort. The grid's
// cells are independent trials and fan out across sc.Parallel workers.
func Fig12(sc Scale, w io.Writer) (*Fig12Result, error) {
	sc = sc.withDefaults()
	type trial struct {
		load    Load
		policy  policies.Kind
		profile int
	}
	var trials []trial
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
			for _, frac := range []int{4, 1} {
				p := sc.ProfileWindows / frac
				if p < 16 {
					p = 16
				}
				trials = append(trials, trial{load: load, policy: kind, profile: p})
			}
		}
	}
	cells, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (Fig12Cell, error) {
		cfg := channelConfig(tr.load, tr.policy, sc)
		cfg.ProfileWindows = tr.profile
		run, err := covert.Run(cfg, defaultLearner())
		if err != nil {
			return Fig12Cell{}, err
		}
		return Fig12Cell{
			Policy:         tr.policy,
			Load:           tr.load,
			ProfileWindows: tr.profile,
			RTAccuracy:     run.RTAccuracy,
			VectorAccuracy: run.VecAccuracy[defaultLearner().Name()],
			Capacity:       run.Capacity,
			Separation:     covert.Separation(run.Hist0, run.Hist1),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Cells: cells}
	fprintf(w, "Fig 12: covert-channel accuracy under schedule randomization\n")
	fprintf(w, "%-10s %-11s %8s %9s %9s %9s %7s\n",
		"policy", "load", "profile", "RT acc", "vec acc", "capacity", "sep")
	for _, cell := range res.Cells {
		fprintf(w, "%-10s %-11s %8d %8.2f%% %8.2f%% %9.3f %7.3f\n",
			cell.Policy, cell.Load, cell.ProfileWindows,
			100*cell.RTAccuracy, 100*cell.VectorAccuracy, cell.Capacity, cell.Separation)
	}
	return res, nil
}

// Fig13Result compares execution-vector heatmaps under TimeDice with the
// NoRandom baseline of Fig. 4(b): the column-density distance collapses.
type Fig13Result struct {
	NoRandomDistance  float64
	TimeDiceUDistance float64
	TimeDiceWDistance float64
	// Heatmap is a rendered sample of the TimeDiceW vectors.
	Heatmap string
}

// Fig13 regenerates the Fig. 13 heatmaps (quantified by density distance),
// running the three policies' trials concurrently.
func Fig13(sc Scale, w io.Writer) (*Fig13Result, error) {
	sc = sc.withDefaults()
	type outcome struct {
		distance float64
		heatmap  string
	}
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW}
	outs, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (outcome, error) {
		cfg := channelConfig(BaseLoad, kind, sc)
		run, err := covert.Run(cfg)
		if err != nil {
			return outcome{}, err
		}
		var vectors [][]float64
		var labels []int
		for _, ob := range run.Profile {
			vectors = append(vectors, ob.Vector)
			labels = append(labels, ob.Label)
		}
		d0, d1 := trace.HeatmapDensity(vectors, labels)
		out := outcome{distance: trace.DensityDistance(d0, d1)}
		if kind == policies.TimeDiceW {
			out.heatmap = trace.Heatmap(vectors, labels, 24)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{
		NoRandomDistance:  outs[0].distance,
		TimeDiceUDistance: outs[1].distance,
		TimeDiceWDistance: outs[2].distance,
		Heatmap:           outs[2].heatmap,
	}
	fprintf(w, "Fig 13: execution-vector distinguishability (column-density distance)\n")
	fprintf(w, "NoRandom : %.4f\nTimeDiceU: %.4f\nTimeDiceW: %.4f\n",
		res.NoRandomDistance, res.TimeDiceUDistance, res.TimeDiceWDistance)
	fprintf(w, "\nTimeDiceW heatmap sample:\n%s", res.Heatmap)
	return res, nil
}
