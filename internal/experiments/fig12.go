package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/policies"
	"timedice/internal/trace"
)

// Fig12Cell is one cell of the Fig. 12 grid: one policy × load × profile
// size, with both receiver types.
type Fig12Cell struct {
	Policy         policies.Kind
	Load           Load
	ProfileWindows int
	RTAccuracy     float64
	VectorAccuracy float64
	Capacity       float64
	Separation     float64
}

// Fig12Result holds the whole mitigation grid (and doubles as the data
// source for Fig. 15, which plots the Capacity column).
type Fig12Result struct {
	Cells []Fig12Cell
}

// Cell returns the cell for (policy, load) at the largest profile size.
func (r *Fig12Result) Cell(k policies.Kind, l Load) (Fig12Cell, bool) {
	var best Fig12Cell
	found := false
	for _, c := range r.Cells {
		if c.Policy == k && c.Load == l && (!found || c.ProfileWindows > best.ProfileWindows) {
			best = c
			found = true
		}
	}
	return best, found
}

// Fig12 measures the impact of TimeDice on covert-channel accuracy:
// NoRandom vs TimeDiceU vs TimeDiceW, base and light load, response-time and
// execution-vector receivers, as a function of profiling effort.
func Fig12(sc Scale, w io.Writer) (*Fig12Result, error) {
	sc = sc.withDefaults()
	res := &Fig12Result{}
	fprintf(w, "Fig 12: covert-channel accuracy under schedule randomization\n")
	fprintf(w, "%-10s %-11s %8s %9s %9s %9s %7s\n",
		"policy", "load", "profile", "RT acc", "vec acc", "capacity", "sep")
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
			for _, frac := range []int{4, 1} {
				p := sc.ProfileWindows / frac
				if p < 16 {
					p = 16
				}
				cfg := channelConfig(load, kind, sc)
				cfg.ProfileWindows = p
				run, err := covert.Run(cfg, defaultLearner())
				if err != nil {
					return nil, err
				}
				cell := Fig12Cell{
					Policy:         kind,
					Load:           load,
					ProfileWindows: p,
					RTAccuracy:     run.RTAccuracy,
					VectorAccuracy: run.VecAccuracy[defaultLearner().Name()],
					Capacity:       run.Capacity,
					Separation:     covert.Separation(run.Hist0, run.Hist1),
				}
				res.Cells = append(res.Cells, cell)
				fprintf(w, "%-10s %-11s %8d %8.2f%% %8.2f%% %9.3f %7.3f\n",
					kind, load, p, 100*cell.RTAccuracy, 100*cell.VectorAccuracy, cell.Capacity, cell.Separation)
			}
		}
	}
	return res, nil
}

// Fig13Result compares execution-vector heatmaps under TimeDice with the
// NoRandom baseline of Fig. 4(b): the column-density distance collapses.
type Fig13Result struct {
	NoRandomDistance  float64
	TimeDiceUDistance float64
	TimeDiceWDistance float64
	// Heatmap is a rendered sample of the TimeDiceW vectors.
	Heatmap string
}

// Fig13 regenerates the Fig. 13 heatmaps (quantified by density distance).
func Fig13(sc Scale, w io.Writer) (*Fig13Result, error) {
	sc = sc.withDefaults()
	res := &Fig13Result{}
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		cfg := channelConfig(BaseLoad, kind, sc)
		run, err := covert.Run(cfg)
		if err != nil {
			return nil, err
		}
		var vectors [][]float64
		var labels []int
		for _, ob := range run.Profile {
			vectors = append(vectors, ob.Vector)
			labels = append(labels, ob.Label)
		}
		d0, d1 := trace.HeatmapDensity(vectors, labels)
		dist := trace.DensityDistance(d0, d1)
		switch kind {
		case policies.NoRandom:
			res.NoRandomDistance = dist
		case policies.TimeDiceU:
			res.TimeDiceUDistance = dist
		case policies.TimeDiceW:
			res.TimeDiceWDistance = dist
			res.Heatmap = trace.Heatmap(vectors, labels, 24)
		}
	}
	fprintf(w, "Fig 13: execution-vector distinguishability (column-density distance)\n")
	fprintf(w, "NoRandom : %.4f\nTimeDiceU: %.4f\nTimeDiceW: %.4f\n",
		res.NoRandomDistance, res.TimeDiceUDistance, res.TimeDiceWDistance)
	fprintf(w, "\nTimeDiceW heatmap sample:\n%s", res.Heatmap)
	return res, nil
}
