package experiments

import (
	"io"

	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/trace"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// Fig06Result holds the two schedule traces of Fig. 6: the 3-partition
// example under fixed priority and under TimeDice.
type Fig06Result struct {
	NoRandomGantt string
	TimeDiceGantt string
	// SwitchCounts per policy over the traced window — randomization
	// visibly fragments the schedule.
	NoRandomSwitches, TimeDiceSwitches int64
}

// Fig06 records 100 ms of schedule for both policies, running the two traces
// concurrently.
func Fig06(sc Scale, w io.Writer) (*Fig06Result, error) {
	sc = sc.withDefaults()
	res := &Fig06Result{}
	spec := workload.ThreePartition()
	names := make([]string, len(spec.Partitions))
	for i, p := range spec.Partitions {
		names[i] = p.Name
	}
	type outcome struct {
		gantt    string
		switches int64
	}
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceW}
	outs, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (outcome, error) {
		built, err := spec.Build()
		if err != nil {
			return outcome{}, err
		}
		pol, err := policies.Build(kind, built.Partitions, policies.Options{})
		if err != nil {
			return outcome{}, err
		}
		sys, err := engine.New(built.Partitions, pol, rng.New(sc.Seed))
		if err != nil {
			return outcome{}, err
		}
		rec := trace.NewRecorder(0, vtime.Time(vtime.MS(100)))
		sys.TraceFn = rec.Hook()
		sys.Run(vtime.Time(vtime.MS(100)))
		return outcome{gantt: rec.Gantt(names, vtime.Millisecond), switches: sys.Counters.Switches}, nil
	})
	if err != nil {
		return nil, err
	}
	res.NoRandomGantt, res.NoRandomSwitches = outs[0].gantt, outs[0].switches
	res.TimeDiceGantt, res.TimeDiceSwitches = outs[1].gantt, outs[1].switches
	fprintf(w, "Fig 6(a): NoRandom schedule trace (switches=%d)\n%s\n", res.NoRandomSwitches, res.NoRandomGantt)
	fprintf(w, "Fig 6(b): TimeDice schedule trace (switches=%d)\n%s", res.TimeDiceSwitches, res.TimeDiceGantt)
	return res, nil
}
