package experiments

import (
	"io"

	"timedice/internal/engine"
	"timedice/internal/entropy"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// RandomnessRow reports the schedule-uncertainty metrics for one policy on
// one load: mean slot entropy (bits; 0 = deterministic) and the
// budget-exhaustion spread of the receiver partition Π4 (Theorem 1's
// temporal-locality measure).
type RandomnessRow struct {
	Policy           policies.Kind
	Load             Load
	SlotEntropy      float64
	EntropyBound     float64
	ExhaustionStdMS  float64
	ExhaustionMeanMS float64
}

// RandomnessResult is the policy × load grid.
type RandomnessResult struct {
	Rows []RandomnessRow
}

// Row returns the entry for (kind, load).
func (r *RandomnessResult) Row(kind policies.Kind, load Load) (RandomnessRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == kind && row.Load == load {
			return row, true
		}
	}
	return RandomnessRow{}, false
}

// Randomness measures how much uncertainty each policy injects into the
// schedule of the (greedy) Table I system: the quantitative counterpart of
// Fig. 6's visual comparison and of Theorem 1's argument. The load × policy
// grid fans out across sc.Parallel workers.
func Randomness(sc Scale, w io.Writer) (*RandomnessResult, error) {
	sc = sc.withDefaults()
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second
	type trial struct {
		load Load
		kind policies.Kind
	}
	var trials []trial
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
			trials = append(trials, trial{load: load, kind: kind})
		}
	}
	rows, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (RandomnessRow, error) {
		spec := greedySpec(tr.load.Spec())
		hyper := entropy.Hyperperiod(spec, vtime.Second)
		row, err := randomnessRun(spec, tr.kind, hyper, dur, sc.Seed)
		if err != nil {
			return RandomnessRow{}, err
		}
		row.Load = tr.load
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &RandomnessResult{Rows: rows}
	fprintf(w, "Schedule randomness (greedy Table I): slot entropy and Π4 budget-exhaustion spread\n")
	fprintf(w, "%-10s %-11s %12s %10s %12s %12s\n",
		"policy", "load", "slotEntropy", "bound", "exhaust std", "exhaust mean")
	for _, row := range res.Rows {
		fprintf(w, "%-10s %-11s %12.3f %10.3f %10.2fms %10.2fms\n",
			row.Policy, row.Load, row.SlotEntropy, row.EntropyBound, row.ExhaustionStdMS, row.ExhaustionMeanMS)
	}
	return res, nil
}

func randomnessRun(spec model.SystemSpec, kind policies.Kind, hyper, dur vtime.Duration, seed uint64) (RandomnessRow, error) {
	built, err := spec.Build()
	if err != nil {
		return RandomnessRow{}, err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return RandomnessRow{}, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return RandomnessRow{}, err
	}
	slots := entropy.NewSlotObserver(hyper, vtime.Millisecond, len(spec.Partitions))
	exhaust := entropy.NewExhaustionObserver(spec)
	slotHook, exhaustHook := slots.Hook(), exhaust.Hook()
	sys.TraceFn = func(seg engine.Segment) {
		slotHook(seg)
		exhaustHook(seg)
	}
	sys.Run(vtime.Time(dur))
	spread := exhaust.Spread(3) // Π4, the feasibility test's receiver
	return RandomnessRow{
		Policy:           kind,
		SlotEntropy:      slots.MeanEntropy(),
		EntropyBound:     slots.MaxEntropy(),
		ExhaustionStdMS:  spread.Std(),
		ExhaustionMeanMS: spread.Mean(),
	}, nil
}
