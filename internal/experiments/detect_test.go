package experiments

import (
	"io"
	"testing"
)

func TestDetectionFlagsSenderUnderBothPolicies(t *testing.T) {
	res, err := Detection(Scale{TestWindows: 400, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.SenderFirst {
			t.Errorf("%v: sender not ranked first: %+v", row.Policy, row.Ranking)
		}
		if row.SenderScore < row.RunnerUp+0.15 {
			t.Errorf("%v: sender score %.3f too close to runner-up %.3f",
				row.Policy, row.SenderScore, row.RunnerUp)
		}
	}
	// Detection is policy-invariant: TimeDice randomizes WHEN the sender
	// runs, not HOW MUCH it consumes per period.
	if d := res.Rows[0].SenderScore - res.Rows[1].SenderScore; d > 0.1 || d < -0.1 {
		t.Errorf("sender score should be stable across policies: %.3f vs %.3f",
			res.Rows[0].SenderScore, res.Rows[1].SenderScore)
	}
}
