package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/vtime"
)

// RatePoint is one point of the signaling-rate sweep: a monitoring-window
// length, the per-window channel capacity, and the resulting channel rate in
// bits per second — the paper's "if the frequency of the monitoring window is
// f Hz ... about 0.8f–0.9f bits can be sent over 1 second under NoRandom and
// about 0.1f–0.2f under TIMEDICE" (§V-B1) made concrete.
type RatePoint struct {
	Policy   policies.Kind
	Window   vtime.Duration
	Accuracy float64
	Capacity float64 // bits per window
	BitsPerS float64 // Capacity / Window
}

// RateResult is the whole sweep.
type RateResult struct {
	Points []RatePoint
}

// Point returns the entry for (policy, window).
func (r *RateResult) Point(k policies.Kind, w vtime.Duration) (RatePoint, bool) {
	for _, p := range r.Points {
		if p.Policy == k && p.Window == w {
			return p, true
		}
	}
	return RatePoint{}, false
}

// Rate sweeps the monitoring-window length over multiples of the receiver's
// replenishment period (window = k·T_R for k ∈ {2, 3, 6, 12}) under NoRandom
// and TimeDiceW on the Table I base system. Shorter windows signal faster but
// give the receiver fewer replenishments per observation; the product
// capacity/window is the achievable covert bit rate.
func Rate(sc Scale, w io.Writer) (*RateResult, error) {
	sc = sc.withDefaults()
	spec := BaseLoad.Spec()
	tR := spec.Partitions[3].Period
	type trial struct {
		k    int64
		kind policies.Kind
	}
	var trials []trial
	for _, k := range []int64{2, 3, 6, 12} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
			trials = append(trials, trial{k: k, kind: kind})
		}
	}
	points, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (RatePoint, error) {
		window := vtime.Duration(tr.k) * tR
		cfg := channelConfig(BaseLoad, tr.kind, sc)
		cfg.Window = window
		// The sender executes once per receiver replenishment so that a
		// burst always lands at the start of the receiver's final budget
		// period, whatever the window length (cf. Fig. 3's "how many
		// times it needs to execute during a monitoring window").
		cfg.SenderPeriod = tR
		// Keep the experiment length comparable across window sizes.
		cfg.TestWindows = sc.TestWindows * 3 / int(tr.k)
		if cfg.TestWindows < 50 {
			cfg.TestWindows = 50
		}
		run, err := covert.Run(cfg)
		if err != nil {
			return RatePoint{}, err
		}
		return RatePoint{
			Policy:   tr.kind,
			Window:   window,
			Accuracy: run.RTAccuracy,
			Capacity: run.Capacity,
			BitsPerS: run.Capacity / window.Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &RateResult{Points: points}
	fprintf(w, "Signaling-rate sweep (receiver Π4, T_R = %v)\n", tR)
	fprintf(w, "%-10s %-10s %9s %10s %10s\n", "policy", "window", "accuracy", "b/window", "bits/s")
	for _, pt := range res.Points {
		fprintf(w, "%-10s %-10v %8.2f%% %10.3f %10.2f\n",
			pt.Policy, pt.Window, 100*pt.Accuracy, pt.Capacity, pt.BitsPerS)
	}
	return res, nil
}
