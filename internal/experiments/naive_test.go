package experiments

import (
	"io"
	"testing"
)

func TestNaiveRandomBreaksBudgetsTimeDiceDoesNot(t *testing.T) {
	res, err := Naive(Scale{SimSeconds: 10, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"TimeDiceW", "TimeDiceU"} {
		row, ok := res.Row(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		if row.PeriodsShort != 0 || row.TotalShortfall != 0 {
			t.Errorf("%s: %d short periods (total %v) — schedulability preservation violated",
				name, row.PeriodsShort, row.TotalShortfall)
		}
		if row.PeriodsChecked == 0 {
			t.Errorf("%s: no periods checked", name)
		}
	}
	naive, ok := res.Row("NaiveRandom")
	if !ok {
		t.Fatal("missing NaiveRandom row")
	}
	if naive.PeriodsShort == 0 {
		t.Error("NaiveRandom showed no shortfalls — the strawman should visibly break budgets at 80% load")
	}
	if float64(naive.PeriodsShort)/float64(naive.PeriodsChecked) < 0.05 {
		t.Errorf("NaiveRandom shortfall rate suspiciously low: %d/%d",
			naive.PeriodsShort, naive.PeriodsChecked)
	}
}
