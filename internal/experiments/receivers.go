package experiments

import (
	"io"
	"sort"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/ml"
	"timedice/internal/policies"
)

// ReceiverRow is one learner's accuracy on the same channel data.
type ReceiverRow struct {
	Receiver string
	NoRandom float64
	TimeDice float64
}

// ReceiverZooResult compares every implemented receiver — the paper's SVM,
// the Bayesian response-time decoder, and the baselines — on identical
// channel observations (base-load Table I).
type ReceiverZooResult struct {
	Rows []ReceiverRow
}

// Row returns the entry for a receiver name.
func (r *ReceiverZooResult) Row(name string) (ReceiverRow, bool) {
	for _, row := range r.Rows {
		if row.Receiver == name {
			return row, true
		}
	}
	return ReceiverRow{}, false
}

// ReceiverZoo evaluates all receivers under NoRandom and TimeDiceW.
func ReceiverZoo(sc Scale, w io.Writer) (*ReceiverZooResult, error) {
	sc = sc.withDefaults()
	trainers := []ml.Trainer{ml.SVM{}, ml.NaiveBayes{}, ml.Forest{}, ml.LogReg{}, ml.KNN{}}
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceW}
	runs, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (*covert.Result, error) {
		cfg := channelConfig(BaseLoad, kind, sc)
		return covert.Run(cfg, trainers...)
	})
	if err != nil {
		return nil, err
	}
	acc := map[string]*ReceiverRow{}
	get := func(name string) *ReceiverRow {
		if r, ok := acc[name]; ok {
			return r
		}
		r := &ReceiverRow{Receiver: name}
		acc[name] = r
		return r
	}
	for i, kind := range kinds {
		run := runs[i]
		assign := func(name string, v float64) {
			r := get(name)
			if kind == policies.NoRandom {
				r.NoRandom = v
			} else {
				r.TimeDice = v
			}
		}
		assign("response-time", run.RTAccuracy)
		assign("response-time-online", run.OnlineRTAccuracy)
		for name, a := range run.VecAccuracy {
			assign(name, a)
		}
	}
	res := &ReceiverZooResult{}
	for _, r := range acc {
		res.Rows = append(res.Rows, *r)
	}
	sort.Slice(res.Rows, func(a, b int) bool { return res.Rows[a].NoRandom > res.Rows[b].NoRandom })
	fprintf(w, "Receiver zoo (base load): accuracy by decoder\n")
	fprintf(w, "%-22s %10s %10s\n", "receiver", "NoRandom", "TimeDiceW")
	for _, r := range res.Rows {
		fprintf(w, "%-22s %9.2f%% %9.2f%%\n", r.Receiver, 100*r.NoRandom, 100*r.TimeDice)
	}
	return res, nil
}
