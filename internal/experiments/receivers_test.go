package experiments

import (
	"io"
	"testing"
)

func TestReceiverZoo(t *testing.T) {
	res, err := ReceiverZoo(Scale{ProfileWindows: 250, TestWindows: 500, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"response-time", "response-time-online", "svm-rbf", "naive-bayes", "forest", "logreg", "knn"}
	for _, name := range want {
		row, ok := res.Row(name)
		if !ok {
			t.Fatalf("missing receiver %s", name)
		}
		// Every receiver decodes well above chance with no defense and is
		// degraded by TimeDice.
		if row.NoRandom < 0.7 {
			t.Errorf("%s: NoRandom %.3f too weak", name, row.NoRandom)
		}
		if row.TimeDice > row.NoRandom-0.05 {
			t.Errorf("%s: TimeDice %.3f vs NoRandom %.3f — no mitigation", name, row.TimeDice, row.NoRandom)
		}
	}
	// §III-d: the best vector receiver at least matches the RT decoder.
	rt, _ := res.Row("response-time")
	svm, _ := res.Row("svm-rbf")
	if svm.NoRandom < rt.NoRandom-0.05 {
		t.Errorf("SVM (%.3f) should match or beat the RT decoder (%.3f)", svm.NoRandom, rt.NoRandom)
	}
}
