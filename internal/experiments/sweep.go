package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/workload"
)

// UtilizationPoint is one point of the load sweep: the Table I system at
// budget fraction α (total partition utilization 5α).
type UtilizationPoint struct {
	Alpha             float64
	Utilization       float64
	NoRandomAccuracy  float64
	TimeDiceWAccuracy float64
	NoRandomCapacity  float64
	TimeDiceWCapacity float64
	// IdleEligibleFrac would require policy introspection; the capacity gap
	// serves as the observable effectiveness measure.
}

// UtilizationSweepResult extends the paper's base/light dichotomy (α=16%/8%)
// to a curve: the paper's claim that TimeDice "is more effective when the
// system is configured in a favorable way to an adversary" (lighter load)
// becomes a visible trend.
type UtilizationSweepResult struct {
	Points []UtilizationPoint
}

// UtilizationSweep runs the feasibility channel at α ∈ {6, 10, 16, 19}% under
// NoRandom and TimeDiceW; the eight (α, policy) trials fan out across
// sc.Parallel workers.
func UtilizationSweep(sc Scale, w io.Writer) (*UtilizationSweepResult, error) {
	sc = sc.withDefaults()
	alphas := []float64{0.06, 0.10, 0.16, 0.19}
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceW}
	type trial struct {
		alpha float64
		kind  policies.Kind
	}
	var trials []trial
	for _, alpha := range alphas {
		for _, kind := range kinds {
			trials = append(trials, trial{alpha: alpha, kind: kind})
		}
	}
	results, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (*covert.Result, error) {
		spec := workload.TableI(tr.alpha, workload.DefaultBeta*tr.alpha/workload.DefaultAlpha)
		return covert.Run(covert.Config{
			Spec:           spec,
			Sender:         1,
			Receiver:       3,
			ProfileWindows: sc.ProfileWindows,
			TestWindows:    sc.TestWindows,
			Policy:         tr.kind,
			Seed:           sc.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	res := &UtilizationSweepResult{}
	fprintf(w, "Utilization sweep (Table I at budget fraction α; total utilization 5α)\n")
	fprintf(w, "%-7s %6s %10s %10s %10s %10s\n", "alpha", "util", "NR acc", "TDW acc", "NR cap", "TDW cap")
	for i, alpha := range alphas {
		spec := workload.TableI(alpha, workload.DefaultBeta*alpha/workload.DefaultAlpha)
		pt := UtilizationPoint{Alpha: alpha, Utilization: spec.Utilization()}
		nr, tdw := results[2*i], results[2*i+1]
		pt.NoRandomAccuracy, pt.NoRandomCapacity = nr.RTAccuracy, nr.Capacity
		pt.TimeDiceWAccuracy, pt.TimeDiceWCapacity = tdw.RTAccuracy, tdw.Capacity
		res.Points = append(res.Points, pt)
		fprintf(w, "%-7.2f %5.0f%% %9.2f%% %9.2f%% %10.3f %10.3f\n",
			alpha, 100*pt.Utilization, 100*pt.NoRandomAccuracy, 100*pt.TimeDiceWAccuracy,
			pt.NoRandomCapacity, pt.TimeDiceWCapacity)
	}
	return res, nil
}
