package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/policies"
	"timedice/internal/workload"
)

// UtilizationPoint is one point of the load sweep: the Table I system at
// budget fraction α (total partition utilization 5α).
type UtilizationPoint struct {
	Alpha             float64
	Utilization       float64
	NoRandomAccuracy  float64
	TimeDiceWAccuracy float64
	NoRandomCapacity  float64
	TimeDiceWCapacity float64
	// IdleEligibleFrac would require policy introspection; the capacity gap
	// serves as the observable effectiveness measure.
}

// UtilizationSweepResult extends the paper's base/light dichotomy (α=16%/8%)
// to a curve: the paper's claim that TimeDice "is more effective when the
// system is configured in a favorable way to an adversary" (lighter load)
// becomes a visible trend.
type UtilizationSweepResult struct {
	Points []UtilizationPoint
}

// UtilizationSweep runs the feasibility channel at α ∈ {6, 10, 16, 19}% under
// NoRandom and TimeDiceW.
func UtilizationSweep(sc Scale, w io.Writer) (*UtilizationSweepResult, error) {
	sc = sc.withDefaults()
	res := &UtilizationSweepResult{}
	fprintf(w, "Utilization sweep (Table I at budget fraction α; total utilization 5α)\n")
	fprintf(w, "%-7s %6s %10s %10s %10s %10s\n", "alpha", "util", "NR acc", "TDW acc", "NR cap", "TDW cap")
	for _, alpha := range []float64{0.06, 0.10, 0.16, 0.19} {
		spec := workload.TableI(alpha, workload.DefaultBeta*alpha/workload.DefaultAlpha)
		pt := UtilizationPoint{Alpha: alpha, Utilization: spec.Utilization()}
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
			cfg := covert.Config{
				Spec:           spec,
				Sender:         1,
				Receiver:       3,
				ProfileWindows: sc.ProfileWindows,
				TestWindows:    sc.TestWindows,
				Policy:         kind,
				Seed:           sc.Seed,
			}
			run, err := covert.Run(cfg)
			if err != nil {
				return nil, err
			}
			if kind == policies.NoRandom {
				pt.NoRandomAccuracy, pt.NoRandomCapacity = run.RTAccuracy, run.Capacity
			} else {
				pt.TimeDiceWAccuracy, pt.TimeDiceWCapacity = run.RTAccuracy, run.Capacity
			}
		}
		res.Points = append(res.Points, pt)
		fprintf(w, "%-7.2f %5.0f%% %9.2f%% %9.2f%% %10.3f %10.3f\n",
			alpha, 100*pt.Utilization, 100*pt.NoRandomAccuracy, 100*pt.TimeDiceWAccuracy,
			pt.NoRandomCapacity, pt.TimeDiceWCapacity)
	}
	return res, nil
}
