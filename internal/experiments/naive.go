package experiments

import (
	"io"

	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/vtime"
)

// ShortfallRow quantifies budget preservation for one policy: over a run of
// the Table I system with every partition's task demanding its full budget
// each period, how many replenishment periods ended with the partition
// under-served, and by how much in total.
type ShortfallRow struct {
	Policy         string
	PeriodsChecked int64
	PeriodsShort   int64
	TotalShortfall vtime.Duration
	WorstShortfall vtime.Duration
}

// NaiveComparison is the §IV motivation made measurable: TimeDice's candidacy
// test is what separates safe randomization from the naive strawman.
type NaiveComparison struct {
	Rows []ShortfallRow
}

// Row returns the entry for a policy name.
func (n *NaiveComparison) Row(name string) (ShortfallRow, bool) {
	for _, r := range n.Rows {
		if r.Policy == name {
			return r, true
		}
	}
	return ShortfallRow{}, false
}

// Naive measures per-period budget shortfalls under TimeDiceW, TimeDiceU,
// and the unprincipled NaiveRandom scheduler on the fully loaded Table I
// system ("partitions ... not being able to fully utilize the CPU budget
// assigned" — §IV).
func Naive(sc Scale, w io.Writer) (*NaiveComparison, error) {
	sc = sc.withDefaults()
	spec := greedySpec(BaseLoad.Spec())
	dur := vtime.Duration(sc.SimSeconds) * vtime.Second

	type entry struct {
		name string
		mk   func() engine.GlobalPolicy
	}
	entries := []entry{
		{"TimeDiceW", func() engine.GlobalPolicy { return core.NewPolicy() }},
		{"TimeDiceU", func() engine.GlobalPolicy {
			return core.NewPolicy(core.WithSelection(core.SelectUniform))
		}},
		{"NaiveRandom", func() engine.GlobalPolicy { return &sched.NaiveRandom{} }},
	}
	rows, err := runner.Map(sc.Parallel, entries, func(_ int, e entry) (ShortfallRow, error) {
		return shortfallRun(spec, e.mk(), dur, sc.Seed)
	})
	if err != nil {
		return nil, err
	}
	res := &NaiveComparison{Rows: rows}
	fprintf(w, "Budget preservation: per-period shortfalls on the saturated Table I system\n")
	fprintf(w, "%-12s %10s %10s %14s %14s\n", "policy", "periods", "short", "total short", "worst short")
	for _, row := range res.Rows {
		fprintf(w, "%-12s %10d %10d %14v %14v\n",
			row.Policy, row.PeriodsChecked, row.PeriodsShort, row.TotalShortfall, row.WorstShortfall)
	}
	return res, nil
}

// greedySpec replaces every partition's tasks with one full-budget-per-period
// task so any supply shortfall is observable.
func greedySpec(spec model.SystemSpec) model.SystemSpec {
	out := spec
	out.Partitions = append([]model.PartitionSpec(nil), spec.Partitions...)
	for i := range out.Partitions {
		p := &out.Partitions[i]
		p.Tasks = []model.TaskSpec{{Name: "greedy", Period: p.Period, WCET: p.Budget}}
	}
	return out
}

func shortfallRun(spec model.SystemSpec, pol engine.GlobalPolicy, dur vtime.Duration, seed uint64) (ShortfallRow, error) {
	built, err := spec.Build()
	if err != nil {
		return ShortfallRow{}, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return ShortfallRow{}, err
	}
	supply := make([]map[int64]vtime.Duration, len(spec.Partitions))
	for i := range supply {
		supply[i] = make(map[int64]vtime.Duration)
	}
	sys.TraceFn = func(seg engine.Segment) {
		if seg.Partition < 0 {
			return
		}
		T := spec.Partitions[seg.Partition].Period
		for t0 := seg.Start; t0 < seg.End; {
			k := int64(t0) / int64(T)
			winEnd := vtime.Time((k + 1) * int64(T))
			chunk := seg.End.Min(winEnd).Sub(t0)
			supply[seg.Partition][k] += chunk
			t0 = t0.Add(chunk)
		}
	}
	sys.Run(vtime.Time(dur))

	row := ShortfallRow{Policy: pol.Name()}
	for i, p := range spec.Partitions {
		periods := int64(dur) / int64(p.Period)
		for k := int64(0); k < periods; k++ {
			row.PeriodsChecked++
			if got := supply[i][k]; got < p.Budget {
				row.PeriodsShort++
				short := p.Budget - got
				row.TotalShortfall += short
				if short > row.WorstShortfall {
					row.WorstShortfall = short
				}
			}
		}
	}
	return row, nil
}
