package experiments

import (
	"io"
	"testing"

	"timedice/internal/policies"
)

func TestMultiPairConcurrentChannels(t *testing.T) {
	results, err := MultiPairReport(Scale{TestWindows: 600, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var nr, td *MultiPairResult
	for _, r := range results {
		switch r.Policy {
		case policies.NoRandom:
			nr = r
		case policies.TimeDiceW:
			td = r
		}
	}
	if nr == nil || td == nil {
		t.Fatal("missing policies")
	}
	// The higher-priority pair decodes near-perfectly despite the second
	// pair's concurrent modulation.
	if nr.Accuracy1 < 0.9 {
		t.Errorf("pair 1 NoRandom accuracy %.3f, want >= 0.9", nr.Accuracy1)
	}
	// The lower-priority pair sees the first pair as strong structured noise
	// but still beats chance.
	if nr.Accuracy2 < 0.55 {
		t.Errorf("pair 2 NoRandom accuracy %.3f, want above chance", nr.Accuracy2)
	}
	// TimeDice degrades both pairs at once.
	if td.Accuracy1 > nr.Accuracy1-0.25 {
		t.Errorf("pair 1: TimeDice %.3f vs NoRandom %.3f — insufficient mitigation", td.Accuracy1, nr.Accuracy1)
	}
	if td.Accuracy2 > nr.Accuracy2+0.05 {
		t.Errorf("pair 2: TimeDice %.3f above NoRandom %.3f", td.Accuracy2, nr.Accuracy2)
	}
	if td.Accuracy1 > 0.72 || td.Accuracy2 > 0.72 {
		t.Errorf("TimeDice residual accuracies (%.3f, %.3f) too high", td.Accuracy1, td.Accuracy2)
	}
}
