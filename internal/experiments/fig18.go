package experiments

import (
	"io"

	"timedice/internal/blinder"
	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
)

// Fig18Result reproduces the §V-C cross-comparison with BLINDER:
//
//   - the paper's response-time channel (this repo's covert package) under
//     BLINDER's local transform — BLINDER cannot close it;
//   - BLINDER's own task-order channel (Fig. 18) under no defense, under
//     BLINDER, and under TimeDice.
type Fig18Result struct {
	// OrderAccuracy of the Fig. 18 task-order channel.
	OrderNoDefense float64
	OrderBlinder   float64
	OrderTimeDice  float64
	// ResponseAccuracy of the physical-time channel in the same scenario.
	ResponseNoDefense float64
	ResponseBlinder   float64
	ResponseTimeDice  float64
	// PaperChannelBlinder is the §III response-time channel's accuracy on
	// the Table I system when the receiver partition is BLINDER-transformed
	// (the paper's point: same as NoRandom, BLINDER does not defend it).
	PaperChannelNoDefense float64
	PaperChannelBlinder   float64
}

// Fig18 runs the comparison.
func Fig18(sc Scale, w io.Writer) (*Fig18Result, error) {
	sc = sc.withDefaults()
	res := &Fig18Result{}
	windows := sc.TestWindows
	if windows < 200 {
		windows = 200
	}
	runs := []struct {
		cfg   blinder.OrderChannelConfig
		order *float64
		resp  *float64
	}{
		{blinder.OrderChannelConfig{Windows: windows, Seed: sc.Seed}, &res.OrderNoDefense, &res.ResponseNoDefense},
		{blinder.OrderChannelConfig{Windows: windows, Seed: sc.Seed, Blinder: true}, &res.OrderBlinder, &res.ResponseBlinder},
		{blinder.OrderChannelConfig{Windows: windows, Seed: sc.Seed, Policy: policies.TimeDiceW}, &res.OrderTimeDice, &res.ResponseTimeDice},
	}
	// The three order-channel runs and the paper-channel run below are
	// independent simulations; fan them out together.
	var run *covert.Result
	trials := []func() error{
		func() error {
			// The paper's response-time channel with the receiver's local
			// schedule BLINDER-transformed: accuracy should match the
			// undefended baseline.
			base := channelConfig(BaseLoad, policies.NoRandom, sc)
			r, err := covert.Run(base)
			run = r
			return err
		},
	}
	for _, r := range runs {
		trials = append(trials, func() error {
			out, err := blinder.RunOrderChannel(r.cfg)
			if err != nil {
				return err
			}
			*r.order = out.OrderAccuracy
			*r.resp = out.ResponseAccuracy
			return nil
		})
	}
	if err := runner.Do(sc.Parallel, trials...); err != nil {
		return nil, err
	}
	res.PaperChannelNoDefense = run.RTAccuracy
	// BLINDER transforms LOCAL schedules; the paper's receiver has a single
	// task per window whose response time is measured with a physical clock,
	// so the transform leaves the observable untouched. We model this by
	// quantizing the receiver's releases: its task period (150 ms) is a
	// multiple of its partition period (50 ms), so releases are already on
	// replenishment boundaries and the transform is the identity — the
	// channel decodes exactly as before.
	res.PaperChannelBlinder = run.RTAccuracy

	fprintf(w, "Fig 18 / §V-C: BLINDER comparison\n")
	fprintf(w, "%-22s %12s %12s\n", "defense", "order chan", "time chan")
	fprintf(w, "%-22s %11.2f%% %11.2f%%\n", "none (NoRandom)", 100*res.OrderNoDefense, 100*res.ResponseNoDefense)
	fprintf(w, "%-22s %11.2f%% %11.2f%%\n", "BLINDER", 100*res.OrderBlinder, 100*res.ResponseBlinder)
	fprintf(w, "%-22s %11.2f%% %11.2f%%\n", "TimeDice", 100*res.OrderTimeDice, 100*res.ResponseTimeDice)
	fprintf(w, "\npaper's §III channel on Table I: NoRandom %.2f%%, BLINDER %.2f%% (unchanged)\n",
		100*res.PaperChannelNoDefense, 100*res.PaperChannelBlinder)
	return res, nil
}
