package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/stats"
)

// Fig14Row is one panel of Fig. 14: the receiver's profiled Pr(R|X)
// distributions under one policy in the light-load configuration.
type Fig14Row struct {
	Policy       policies.Kind
	Hist0, Hist1 *stats.Histogram
	Separation   float64
	// Spread is the number of distinct 1 ms response-time bins observed —
	// TimeDice widens the support (the paper's "set of possible response
	// times becomes larger").
	Spread int
}

// Fig14Result holds the three panels.
type Fig14Result struct {
	Rows []Fig14Row
}

// Row returns the panel for a policy.
func (r *Fig14Result) Row(k policies.Kind) (Fig14Row, bool) {
	for _, row := range r.Rows {
		if row.Policy == k {
			return row, true
		}
	}
	return Fig14Row{}, false
}

// Fig14 reproduces the light-load response-time distributions under
// NoRandom, TimeDiceU and TimeDiceW, one concurrent trial per policy.
func Fig14(sc Scale, w io.Writer) (*Fig14Result, error) {
	sc = sc.withDefaults()
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW}
	rows, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (Fig14Row, error) {
		cfg := channelConfig(LightLoad, kind, sc)
		run, err := covert.Run(cfg)
		if err != nil {
			return Fig14Row{}, err
		}
		row := Fig14Row{
			Policy:     kind,
			Hist0:      run.Hist0,
			Hist1:      run.Hist1,
			Separation: covert.Separation(run.Hist0, run.Hist1),
		}
		for i := range row.Hist0.Counts {
			if row.Hist0.Counts[i] > 0 || (i < len(row.Hist1.Counts) && row.Hist1.Counts[i] > 0) {
				row.Spread++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{Rows: rows}
	fprintf(w, "Fig 14: Pr(R|X) in the light-load configuration\n")
	for _, row := range res.Rows {
		fprintf(w, "\n%s: separation=%.3f, support=%d bins\n", row.Policy, row.Separation, row.Spread)
		fprintf(w, "Pr(R|X=0):\n%s", row.Hist0.Render(30))
		fprintf(w, "Pr(R|X=1):\n%s", row.Hist1.Render(30))
	}
	return res, nil
}

// Fig15Bar is one bar of Fig. 15: channel capacity per policy and load.
type Fig15Bar struct {
	Policy   policies.Kind
	Load     Load
	Capacity float64 // bits per monitoring window
}

// Fig15Result holds all bars.
type Fig15Result struct {
	Bars []Fig15Bar
}

// Bar returns the capacity for (policy, load).
func (r *Fig15Result) Bar(k policies.Kind, l Load) (float64, bool) {
	for _, b := range r.Bars {
		if b.Policy == k && b.Load == l {
			return b.Capacity, true
		}
	}
	return 0, false
}

// Fig15 measures channel capacity (Eq. 6) for every policy × load, including
// the TDMA reference whose capacity is structurally zero. The eight cells
// fan out across sc.Parallel workers.
func Fig15(sc Scale, w io.Writer) (*Fig15Result, error) {
	sc = sc.withDefaults()
	type trial struct {
		load   Load
		policy policies.Kind
	}
	var trials []trial
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW, policies.TDMA} {
			trials = append(trials, trial{load: load, policy: kind})
		}
	}
	bars, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (Fig15Bar, error) {
		cfg := channelConfig(tr.load, tr.policy, sc)
		run, err := covert.Run(cfg)
		if err != nil {
			return Fig15Bar{}, err
		}
		return Fig15Bar{Policy: tr.policy, Load: tr.load, Capacity: run.Capacity}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{Bars: bars}
	fprintf(w, "Fig 15: channel capacity in bits per monitoring window\n")
	fprintf(w, "%-10s %-11s %9s\n", "policy", "load", "capacity")
	for _, bar := range res.Bars {
		fprintf(w, "%-10s %-11s %9.3f\n", bar.Policy, bar.Load, bar.Capacity)
	}
	return res, nil
}
