package experiments

import (
	"io"
	"testing"
)

func TestUtilizationSweepTrend(t *testing.T) {
	res, err := UtilizationSweep(Scale{ProfileWindows: 200, TestWindows: 400, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		// The attack works at every load...
		if pt.NoRandomAccuracy < 0.75 {
			t.Errorf("α=%.2f: NoRandom accuracy %.3f too low", pt.Alpha, pt.NoRandomAccuracy)
		}
		// ...and TimeDice mitigates at every load.
		if pt.TimeDiceWAccuracy > pt.NoRandomAccuracy-0.15 {
			t.Errorf("α=%.2f: TimeDiceW %.3f vs NoRandom %.3f — weak mitigation",
				pt.Alpha, pt.TimeDiceWAccuracy, pt.NoRandomAccuracy)
		}
		if pt.TimeDiceWCapacity > pt.NoRandomCapacity {
			t.Errorf("α=%.2f: TimeDiceW capacity above NoRandom", pt.Alpha)
		}
	}
	// §V-B1(i): TimeDice is MORE effective when the system is lightly loaded
	// (more room for priority inversion). The residual accuracy at the
	// lightest load must be below the residual accuracy at the heaviest.
	lightest, heaviest := res.Points[0], res.Points[len(res.Points)-1]
	if lightest.TimeDiceWAccuracy >= heaviest.TimeDiceWAccuracy {
		t.Errorf("TimeDiceW residual accuracy should grow with load: %.3f (%.0f%%) vs %.3f (%.0f%%)",
			lightest.TimeDiceWAccuracy, 100*lightest.Utilization,
			heaviest.TimeDiceWAccuracy, 100*heaviest.Utilization)
	}
}
