package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// The parallel runner's contract is that fanning trials across workers
// changes wall-clock time only: every trial seeds its own deterministic
// simulation, results are collected in input order, and rendering happens
// after the fan-in. These tests pin the contract end to end — structured
// results AND rendered bytes must be identical at any worker count.

func TestFig12ParallelMatchesSequential(t *testing.T) {
	seq, par := Quick(), Quick()
	seq.Parallel = 1
	par.Parallel = 4

	var seqOut, parOut bytes.Buffer
	seqRes, err := Fig12(seq, &seqOut)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Fig12(par, &parOut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("Fig12 structured results differ between sequential and parallel runs")
	}
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("Fig12 rendered output differs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqOut.String(), parOut.String())
	}
}

func TestUtilizationSweepParallelMatchesSequential(t *testing.T) {
	seq, par := Quick(), Quick()
	seq.Parallel = 1
	par.Parallel = 4

	var seqOut, parOut bytes.Buffer
	seqRes, err := UtilizationSweep(seq, &seqOut)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := UtilizationSweep(par, &parOut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("UtilizationSweep structured results differ between sequential and parallel runs")
	}
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("UtilizationSweep rendered output differs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqOut.String(), parOut.String())
	}
}
