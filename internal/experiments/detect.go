package experiments

import (
	"io"

	"timedice/internal/detect"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// DetectionRow reports the monitor's verdict for one policy: the ranking of
// partitions by budget-modulation score, and whether the true sender was
// flagged first.
type DetectionRow struct {
	Policy      policies.Kind
	Ranking     []detect.Ranking
	SenderFirst bool
	SenderScore float64
	RunnerUp    float64 // best non-sender score
}

// DetectionResult holds both policies' rows.
type DetectionResult struct {
	Rows []DetectionRow
}

// Detection runs the feasibility channel and applies the defender-side
// consumption monitor (internal/detect): the sender's full/minimal budget
// alternation is flagged under NoRandom AND under TimeDice — randomizing
// WHEN partitions run does not hide HOW MUCH they chose to consume, so
// mitigation and detection compose.
func Detection(sc Scale, w io.Writer) (*DetectionResult, error) {
	sc = sc.withDefaults()
	kinds := []policies.Kind{policies.NoRandom, policies.TimeDiceW}
	rows, err := runner.Map(sc.Parallel, kinds, func(_ int, kind policies.Kind) (DetectionRow, error) {
		return detectionRun(kind, sc)
	})
	if err != nil {
		return nil, err
	}
	res := &DetectionResult{Rows: rows}
	fprintf(w, "Defender-side sender detection (budget-modulation bimodality)\n")
	for _, row := range res.Rows {
		fprintf(w, "%-10s sender-first=%v scores:", row.Policy, row.SenderFirst)
		for _, r := range row.Ranking {
			fprintf(w, " %s=%.3f", r.Partition, r.Score)
		}
		fprintf(w, "\n")
	}
	return res, nil
}

func detectionRun(kind policies.Kind, sc Scale) (DetectionRow, error) {
	spec := BaseLoad.Spec()
	parts := make([]model.PartitionSpec, len(spec.Partitions))
	copy(parts, spec.Partitions)
	for i := range parts {
		parts[i].Server = server.Deferrable
	}
	const senderIdx = 1
	window := 3 * parts[3].Period
	sBudget := parts[senderIdx].Budget
	parts[senderIdx].Tasks = []model.TaskSpec{{Name: "sender", Period: window / 3, WCET: sBudget}}
	spec.Partitions = parts

	root := rng.New(sc.Seed)
	bits := make([]int, sc.TestWindows+4)
	for i := range bits {
		bits[i] = root.Bit()
	}

	built, err := spec.Build()
	if err != nil {
		return DetectionRow{}, err
	}
	sender := built.Task[model.TaskKey(parts[senderIdx].Name, "sender")]
	sender.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
		wdx := int(arrival / vtime.Time(window))
		if wdx >= len(bits) {
			wdx = len(bits) - 1
		}
		if bits[wdx] == 1 {
			return sBudget
		}
		return 10 * vtime.Microsecond
	}
	// Noise partitions jitter as in the channel experiments.
	for pi, ps := range parts {
		if pi == senderIdx {
			continue
		}
		for _, ts := range ps.Tasks {
			tk := built.Task[model.TaskKey(ps.Name, ts.Name)]
			wcet, period := tk.WCET, tk.Period
			nr := root.Split()
			tk.ExecFn = func(int64, vtime.Time) vtime.Duration {
				return vtime.Duration(float64(wcet) * (1 - 0.2*nr.Float64()))
			}
			tk.PeriodFn = func(int64, vtime.Time) vtime.Duration {
				return vtime.Duration(float64(period) * (1 + 0.2*nr.Float64()))
			}
		}
	}

	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return DetectionRow{}, err
	}
	sys, err := engine.New(built.Partitions, pol, root.Split())
	if err != nil {
		return DetectionRow{}, err
	}
	obs := detect.NewConsumptionObserver(spec)
	sys.TraceFn = obs.Hook()
	sys.Run(vtime.Time(vtime.Duration(len(bits)) * window))

	row := DetectionRow{Policy: kind, Ranking: obs.Rank()}
	senderName := parts[senderIdx].Name
	row.SenderFirst = row.Ranking[0].Partition == senderName
	for _, r := range row.Ranking {
		if r.Partition == senderName {
			row.SenderScore = r.Score
		} else if r.Score > row.RunnerUp {
			row.RunnerUp = r.Score
		}
	}
	return row, nil
}
