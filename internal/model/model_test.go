package model

import (
	"math"
	"testing"

	"timedice/internal/server"
	"timedice/internal/vtime"
)

func validSpec() SystemSpec {
	return SystemSpec{
		Name: "v",
		Partitions: []PartitionSpec{
			{Name: "A", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []TaskSpec{{Name: "a1", Period: vtime.MS(20), WCET: vtime.MS(1)}}},
			{Name: "B", Budget: vtime.MS(3), Period: vtime.MS(20), Server: server.Deferrable,
				Tasks: []TaskSpec{
					{Name: "b1", Period: vtime.MS(40), WCET: vtime.MS(2)},
					{Name: "b2", Period: vtime.MS(80), WCET: vtime.MS(2)},
				}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	var empty SystemSpec
	if err := empty.Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	bad := validSpec()
	bad.Partitions[0].Budget = vtime.MS(11)
	if err := bad.Validate(); err == nil {
		t.Error("budget > period accepted")
	}
	bad2 := validSpec()
	bad2.Partitions[1].Tasks[0].WCET = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero-WCET task accepted")
	}
}

func TestUtilization(t *testing.T) {
	s := validSpec()
	if got := s.Utilization(); got != 0.35 {
		t.Errorf("utilization = %v, want 0.35", got)
	}
	if got := s.Partitions[1].LocalUtilization(); math.Abs(got-0.075) > 1e-12 {
		t.Errorf("local utilization = %v, want 0.075", got)
	}
}

func TestBuild(t *testing.T) {
	built, err := validSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Partitions) != 2 {
		t.Fatalf("%d partitions", len(built.Partitions))
	}
	if built.Partitions[0].Priority != 0 || built.Partitions[1].Priority != 1 {
		t.Error("priorities should follow declaration order")
	}
	if built.Partitions[0].Server.PolicyKind() != server.Polling {
		t.Error("default server policy must be polling")
	}
	if built.Partitions[1].Server.PolicyKind() != server.Deferrable {
		t.Error("explicit server policy ignored")
	}
	if built.Task[TaskKey("B", "b2")] == nil {
		t.Error("task handle missing")
	}
	if built.Sched["A"] == nil {
		t.Error("scheduler handle missing")
	}
	if got := len(built.Sched["B"].Tasks()); got != 2 {
		t.Errorf("B has %d tasks", got)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := validSpec()
	bad.Partitions[0].Period = 0
	if _, err := bad.Build(); err == nil {
		t.Error("invalid spec built")
	}
}

func TestTaskKey(t *testing.T) {
	if TaskKey("P", "t") != "P/t" {
		t.Error("task key format")
	}
}
