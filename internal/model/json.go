package model

import (
	"encoding/json"
	"fmt"
	"io"

	"timedice/internal/server"
	"timedice/internal/vtime"
)

// The JSON schema uses milliseconds (floats) for all durations and lowercase
// server-policy names, e.g.:
//
//	{
//	  "name": "demo",
//	  "partitions": [
//	    {"name": "P1", "periodMillis": 20, "budgetMillis": 3.2,
//	     "server": "polling",
//	     "tasks": [{"name": "t1", "periodMillis": 40, "wcetMillis": 1.2}]}
//	  ]
//	}

type jsonSystem struct {
	Name       string          `json:"name"`
	Partitions []jsonPartition `json:"partitions"`
}

type jsonPartition struct {
	Name         string     `json:"name"`
	PeriodMillis float64    `json:"periodMillis"`
	BudgetMillis float64    `json:"budgetMillis"`
	Server       string     `json:"server,omitempty"`
	Tasks        []jsonTask `json:"tasks"`
}

type jsonTask struct {
	Name           string  `json:"name"`
	PeriodMillis   float64 `json:"periodMillis"`
	WCETMillis     float64 `json:"wcetMillis"`
	DeadlineMillis float64 `json:"deadlineMillis,omitempty"`
	OffsetMillis   float64 `json:"offsetMillis,omitempty"`
}

// MarshalJSON renders the spec in the documented schema.
func (s SystemSpec) MarshalJSON() ([]byte, error) {
	js := jsonSystem{Name: s.Name}
	for _, p := range s.Partitions {
		jp := jsonPartition{
			Name:         p.Name,
			PeriodMillis: p.Period.Milliseconds(),
			BudgetMillis: p.Budget.Milliseconds(),
		}
		if p.Server != 0 {
			jp.Server = p.Server.String()
		}
		for _, t := range p.Tasks {
			jp.Tasks = append(jp.Tasks, jsonTask{
				Name:           t.Name,
				PeriodMillis:   t.Period.Milliseconds(),
				WCETMillis:     t.WCET.Milliseconds(),
				DeadlineMillis: t.Deadline.Milliseconds(),
				OffsetMillis:   t.Offset.Milliseconds(),
			})
		}
		js.Partitions = append(js.Partitions, jp)
	}
	return json.MarshalIndent(js, "", "  ")
}

// UnmarshalJSON parses the documented schema and validates the result.
func (s *SystemSpec) UnmarshalJSON(data []byte) error {
	var js jsonSystem
	if err := json.Unmarshal(data, &js); err != nil {
		return fmt.Errorf("model: parse system: %w", err)
	}
	out := SystemSpec{Name: js.Name}
	for _, jp := range js.Partitions {
		ps := PartitionSpec{
			Name:   jp.Name,
			Period: vtime.FromFloatMS(jp.PeriodMillis),
			Budget: vtime.FromFloatMS(jp.BudgetMillis),
		}
		switch jp.Server {
		case "", "polling":
			ps.Server = server.Polling
		case "deferrable":
			ps.Server = server.Deferrable
		case "sporadic":
			ps.Server = server.Sporadic
		default:
			return fmt.Errorf("model: partition %q: unknown server policy %q", jp.Name, jp.Server)
		}
		for _, jt := range jp.Tasks {
			ps.Tasks = append(ps.Tasks, TaskSpec{
				Name:     jt.Name,
				Period:   vtime.FromFloatMS(jt.PeriodMillis),
				WCET:     vtime.FromFloatMS(jt.WCETMillis),
				Deadline: vtime.FromFloatMS(jt.DeadlineMillis),
				Offset:   vtime.FromFloatMS(jt.OffsetMillis),
			})
		}
		out.Partitions = append(out.Partitions, ps)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// ReadSystem parses a system spec from r.
func ReadSystem(r io.Reader) (SystemSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return SystemSpec{}, fmt.Errorf("model: read system: %w", err)
	}
	var s SystemSpec
	if err := s.UnmarshalJSON(data); err != nil {
		return SystemSpec{}, err
	}
	return s, nil
}
