package model

import (
	"encoding/json"
	"strings"
	"testing"

	"timedice/internal/server"
	"timedice/internal/vtime"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := validSpec()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back SystemSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Partitions) != len(orig.Partitions) {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	for i, p := range orig.Partitions {
		bp := back.Partitions[i]
		if bp.Name != p.Name || bp.Period != p.Period || bp.Budget != p.Budget {
			t.Errorf("partition %d mismatch: %+v vs %+v", i, bp, p)
		}
		wantServer := p.Server
		if wantServer == 0 {
			wantServer = server.Polling
		}
		if bp.Server != wantServer {
			t.Errorf("partition %d server %v, want %v", i, bp.Server, wantServer)
		}
		if len(bp.Tasks) != len(p.Tasks) {
			t.Fatalf("partition %d task count", i)
		}
		for j, tk := range p.Tasks {
			bt := bp.Tasks[j]
			if bt != tk {
				t.Errorf("task (%d,%d) mismatch: %+v vs %+v", i, j, bt, tk)
			}
		}
	}
}

func TestReadSystem(t *testing.T) {
	const doc = `{
	  "name": "demo",
	  "partitions": [
	    {"name": "P1", "periodMillis": 20, "budgetMillis": 3.2,
	     "tasks": [{"name": "t1", "periodMillis": 40, "wcetMillis": 1.2}]},
	    {"name": "P2", "periodMillis": 50, "budgetMillis": 8, "server": "deferrable",
	     "tasks": [{"name": "t2", "periodMillis": 100, "wcetMillis": 3, "deadlineMillis": 80, "offsetMillis": 5}]}
	  ]
	}`
	spec, err := ReadSystem(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || len(spec.Partitions) != 2 {
		t.Fatalf("parsed: %+v", spec)
	}
	p1 := spec.Partitions[0]
	if p1.Budget != vtime.FromFloatMS(3.2) || p1.Server != server.Polling {
		t.Errorf("P1: %+v", p1)
	}
	t2 := spec.Partitions[1].Tasks[0]
	if t2.Deadline != vtime.MS(80) || t2.Offset != vtime.MS(5) {
		t.Errorf("t2: %+v", t2)
	}
	if _, err := spec.Build(); err != nil {
		t.Errorf("parsed spec should build: %v", err)
	}
}

func TestReadSystemRejectsBad(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","partitions":[{"name":"P","periodMillis":10,"budgetMillis":20,"tasks":[{"name":"t","periodMillis":10,"wcetMillis":1}]}]}`, // budget > period
		`{"name":"x","partitions":[{"name":"P","periodMillis":10,"budgetMillis":2,"server":"weird","tasks":[{"name":"t","periodMillis":10,"wcetMillis":1}]}]}`,
		`{"name":"x","partitions":[]}`,
	}
	for i, doc := range cases {
		if _, err := ReadSystem(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: bad document accepted", i)
		}
	}
}
