package model

import (
	"strings"
	"testing"
)

// FuzzReadSystem checks the JSON parser never panics and that anything it
// accepts survives a marshal/unmarshal round trip and builds cleanly.
func FuzzReadSystem(f *testing.F) {
	f.Add(`{"name":"x","partitions":[{"name":"P","periodMillis":10,"budgetMillis":2,"tasks":[{"name":"t","periodMillis":20,"wcetMillis":1}]}]}`)
	f.Add(`{"name":"","partitions":[]}`)
	f.Add(`{`)
	f.Add(`{"partitions":[{"periodMillis":-5,"budgetMillis":1e308,"tasks":[{}]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := ReadSystem(strings.NewReader(doc))
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v\ninput: %q", err, doc)
		}
		data, err := spec.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		back, err := ReadSystem(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("round trip failed: %v\nmarshaled: %s", err, data)
		}
		if len(back.Partitions) != len(spec.Partitions) {
			t.Fatalf("round trip changed partition count")
		}
		if _, err := spec.Build(); err != nil {
			t.Fatalf("accepted spec fails to build: %v", err)
		}
	})
}
