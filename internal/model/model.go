// Package model defines the declarative description of a simulated system —
// partitions, budgets, periods, and task sets — shared by the workload
// generators, the schedulability analyses, and the simulator builder.
package model

import (
	"fmt"

	"timedice/internal/partition"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// TaskSpec describes one sporadic task.
type TaskSpec struct {
	Name     string
	Period   vtime.Duration // minimum inter-arrival p
	WCET     vtime.Duration // worst-case execution time e
	Deadline vtime.Duration // 0 ⇒ implicit (= Period)
	Offset   vtime.Duration
}

// PartitionSpec describes one partition: its budget server parameters and its
// local task set in decreasing local-priority order.
type PartitionSpec struct {
	Name   string
	Budget vtime.Duration // B_i
	Period vtime.Duration // T_i
	Server server.Policy  // zero ⇒ server.Polling
	Tasks  []TaskSpec
}

// Utilization returns B_i/T_i.
func (p PartitionSpec) Utilization() float64 {
	return float64(p.Budget) / float64(p.Period)
}

// LocalUtilization returns Σ e/p over the partition's tasks.
func (p PartitionSpec) LocalUtilization() float64 {
	var u float64
	for _, t := range p.Tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}

// SystemSpec describes a complete system. Partitions are in decreasing
// priority order: Partitions[0] is the highest-priority partition.
type SystemSpec struct {
	Name       string
	Partitions []PartitionSpec
}

// Utilization returns Σ B_i/T_i.
func (s SystemSpec) Utilization() float64 {
	var u float64
	for _, p := range s.Partitions {
		u += p.Utilization()
	}
	return u
}

// Validate checks the static parameters.
func (s SystemSpec) Validate() error {
	if len(s.Partitions) == 0 {
		return fmt.Errorf("system %q: no partitions", s.Name)
	}
	for _, p := range s.Partitions {
		if p.Budget <= 0 || p.Period <= 0 || p.Budget > p.Period {
			return fmt.Errorf("partition %q: invalid budget %v / period %v", p.Name, p.Budget, p.Period)
		}
		for _, t := range p.Tasks {
			ts := task.Task{Name: t.Name, Period: t.Period, WCET: t.WCET, Deadline: t.Deadline, Offset: t.Offset}
			if err := ts.Validate(); err != nil {
				return fmt.Errorf("partition %q: %w", p.Name, err)
			}
		}
	}
	return nil
}

// Built is a realized system: live partitions plus handles to the task
// objects so callers (e.g. the covert-channel framework) can attach
// execution-time and inter-arrival hooks before the simulation starts.
type Built struct {
	Partitions []*partition.Partition
	// Task maps "partition/task" names to the live task objects.
	Task map[string]*task.Task
	// Sched maps partition names to their local schedulers.
	Sched map[string]*task.Scheduler
}

// TaskKey returns the lookup key Built.Task uses.
func TaskKey(partitionName, taskName string) string {
	return partitionName + "/" + taskName
}

// Build realizes the spec into live partitions (priority = slice order).
func (s SystemSpec) Build() (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &Built{
		Task:  make(map[string]*task.Task),
		Sched: make(map[string]*task.Scheduler),
	}
	for i, ps := range s.Partitions {
		pol := ps.Server
		if pol == 0 {
			pol = server.Polling
		}
		srv, err := server.New(ps.Budget, ps.Period, pol)
		if err != nil {
			return nil, fmt.Errorf("partition %q: %w", ps.Name, err)
		}
		tasks := make([]*task.Task, 0, len(ps.Tasks))
		for _, ts := range ps.Tasks {
			t := &task.Task{
				Name:     ts.Name,
				Period:   ts.Period,
				WCET:     ts.WCET,
				Deadline: ts.Deadline,
				Offset:   ts.Offset,
			}
			tasks = append(tasks, t)
			b.Task[TaskKey(ps.Name, ts.Name)] = t
		}
		part, err := partition.New(ps.Name, i, srv, tasks)
		if err != nil {
			return nil, err
		}
		b.Partitions = append(b.Partitions, part)
		b.Sched[ps.Name] = part.Local
	}
	return b, nil
}
