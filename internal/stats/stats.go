// Package stats provides the small statistics toolkit the evaluation
// harnesses use: streaming summaries (mean/std/min/max), exact quantiles,
// five-number box-plot summaries (Fig. 16), percentile tables (Table IV),
// and fixed-width histograms (Figs. 4a/14).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count, mean, variance (Welford), min and max.
// The zero value is ready to use.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 with <2 samples).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// String formats the summary as "avg=.. std=.. min=.. max=.. (n=..)".
func (s *Summary) String() string {
	return fmt.Sprintf("avg=%.3f std=%.3f min=%.3f max=%.3f (n=%d)", s.Mean(), s.Std(), s.Min(), s.Max(), s.n)
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear interpolation
// between order statistics (the same convention as numpy's default). It
// panics on an empty slice; it does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the values at each q in qs with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// BoxPlot is the five-number summary plus mean, as rendered in Fig. 16.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes the five-number summary of xs.
func Box(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return BoxPlot{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// String renders the box plot on one line.
func (b BoxPlot) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
}

// Histogram is a fixed-bin-width histogram over [Lo, Lo + Width·len(Counts)).
// Samples outside the range are clamped into the edge bins, which matches
// how the paper's response-time distributions are plotted (a bounded x-axis).
type Histogram struct {
	Lo     float64
	Width  float64
	Counts []int64
	Total  int64
}

// NewHistogram builds a histogram with n bins of the given width from lo.
func NewHistogram(lo, width float64, n int) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive bins and width")
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := h.BinOf(x)
	h.Counts[i]++
	h.Total++
}

// BinOf returns the (clamped) bin index for x.
func (h *Histogram) BinOf(x float64) int {
	i := int(math.Floor((x - h.Lo) / h.Width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Density returns the empirical probability of bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Render draws the histogram as rows of "center | bar count" text, skipping
// empty leading/trailing regions; width is the maximum bar length.
func (h *Histogram) Render(width int) string {
	first, last := -1, -1
	var peak int64
	for i, c := range h.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > peak {
				peak = c
			}
		}
	}
	if first < 0 {
		return "(empty histogram)\n"
	}
	var sb strings.Builder
	for i := first; i <= last; i++ {
		bar := 0
		if peak > 0 {
			bar = int(float64(h.Counts[i]) / float64(peak) * float64(width))
		}
		fmt.Fprintf(&sb, "%10.2f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), h.Counts[i])
	}
	return sb.String()
}

// Mean returns the histogram's mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.Counts {
		sum += float64(c) * h.BinCenter(i)
	}
	return sum / float64(h.Total)
}
