package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Error("zero-value summary not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample std of this classic dataset: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("min/max with negatives: %v/%v", s.Min(), s.Max())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Quantiles(xs, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuantileMatchesSortProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		got := Quantile(xs, q)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 100})
	if b.Min != 1 || b.Max != 100 || b.Median != 3 || b.N != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Mean != 22 {
		t.Errorf("mean = %v", b.Mean)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %v/%v", b.Q1, b.Q3)
	}
	empty := Box(nil)
	if empty.N != 0 {
		t.Error("empty box")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins [0,10) [10,20) ... [40,50)
	for _, x := range []float64{-5, 0, 9.9, 10, 25, 49, 200} {
		h.Add(x)
	}
	if h.Total != 7 {
		t.Errorf("total = %d", h.Total)
	}
	wantCounts := []int64{3, 1, 1, 0, 2} // -5,0,9.9 | 10 | 25 | | 49,200
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.BinCenter(1) != 15 {
		t.Errorf("center = %v", h.BinCenter(1))
	}
	if d := h.Density(0); math.Abs(d-3.0/7.0) > 1e-12 {
		t.Errorf("density = %v", d)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	h.Add(10.5)
	h.Add(20.5)
	if got := h.Mean(); math.Abs(got-15.5) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	if h.Render(20) != "(empty histogram)\n" {
		t.Error("empty render")
	}
	h.Add(3.5)
	h.Add(3.7)
	h.Add(5.2)
	out := h.Render(20)
	if out == "" || len(out) < 10 {
		t.Errorf("render too short: %q", out)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewHistogram(0, 0, 5)
}
