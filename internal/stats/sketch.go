package stats

import (
	"fmt"
	"math"
	"slices"
)

// Sketch accuracy and capacity defaults. With α = 1% the bucket base is
// γ ≈ 1.0202, so 4096 buckets per sign span a dynamic range of γ^4096 ≈
// 10^35 — the collapse safety valve never fires on physically meaningful
// data (response times, accuracies, capacities).
const (
	// DefaultSketchAccuracy is the relative value-accuracy target α of
	// NewSketch: bucketed quantile estimates satisfy |est−x| ≤ α·|x|.
	DefaultSketchAccuracy = 0.01
	// sketchExactCap is the number of raw samples a sketch buffers before
	// spilling to logarithmic buckets. Below it, answers are exact and
	// bit-identical to Quantile/Quantiles.
	sketchExactCap = 1024
	// sketchMaxBins bounds each sign's bucket store; exceeding it collapses
	// the lowest-magnitude buckets (a documented safety valve, see Merge).
	sketchMaxBins = 4096
)

// Sketch is a mergeable streaming quantile estimator with bounded memory:
// a logarithmic-bucket histogram (DDSketch-style) with an exact small-N
// fallback. It exists so campaign aggregation can stream per-trial metrics
// through per-worker sketches and merge them at fan-in, making campaign
// memory independent of trial count.
//
// Two properties drive the design, both load-bearing for the repo's
// determinism contract:
//
//   - Exact small-N fallback: until more than sketchExactCap samples are
//     seen, the raw samples are retained and every quantile query is
//     bit-identical to Quantile/Quantiles on the same multiset.
//   - Order-independent state: a sample's bucket is a pure function of its
//     value, never of insertion order or of the sketch's current state
//     (unlike P² or t-digest centroids). Consequently Add order, Merge
//     order, and Merge association all yield the identical final state:
//     sharding a sample multiset across any number of workers and merging
//     produces the same answers as one sequential pass.
//
// Once spilled to buckets, a quantile estimate returns the representative
// value of the bucket containing the requested order statistic, giving
// relative value error ≤ α (the accuracy passed to NewSketchAccuracy) for
// the value at a rank within rounding (±½) of q·(n−1). Zero is stored
// exactly; negative values use a mirrored store.
//
// The zero Sketch is not usable; construct with NewSketch or
// NewSketchAccuracy.
type Sketch struct {
	alpha       float64
	gamma       float64 // (1+α)/(1−α)
	invLogGamma float64 // 1/ln(γ)

	// exact holds raw samples until the sketch spills; nil afterwards.
	exact   []float64
	spilled bool

	pos, neg sketchStore // buckets for x>0 and x<0 (mirrored)
	zeros    int64
	count    int64
	min, max float64
}

// NewSketch returns a sketch with the default 1% relative accuracy.
func NewSketch() *Sketch { return NewSketchAccuracy(DefaultSketchAccuracy) }

// NewSketchAccuracy returns a sketch with relative value-accuracy target
// alpha, 0 < alpha < 1.
func NewSketchAccuracy(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: sketch accuracy %v outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
	}
}

// Accuracy returns the relative value-accuracy target α.
func (s *Sketch) Accuracy() float64 { return s.alpha }

// N returns the number of observations.
func (s *Sketch) N() int64 { return s.count }

// Min returns the smallest observation (0 with no samples).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 with no samples).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Add records one observation. NaN is rejected with a panic: it has no
// order statistic and would poison the store silently.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: Sketch.Add(NaN)")
	}
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	if !s.spilled {
		s.exact = append(s.exact, x)
		if len(s.exact) > sketchExactCap {
			s.spill()
		}
		return
	}
	s.bucketAdd(x, 1)
}

// spill moves every buffered sample into the bucket stores. Each sample is
// bucketized independently, so the final bucket contents are the same
// whether a sample arrived before or after the spill point.
func (s *Sketch) spill() {
	for _, x := range s.exact {
		s.bucketAdd(x, 1)
	}
	s.exact = nil
	s.spilled = true
}

func (s *Sketch) bucketAdd(x float64, n int64) {
	switch {
	case x == 0:
		s.zeros += n
	case x > 0:
		s.pos.add(s.indexOf(x), n)
	default:
		s.neg.add(s.indexOf(-x), n)
	}
}

// indexOf maps a positive value to its bucket index: the unique i with
// γ^(i−1) < x ≤ γ^i.
func (s *Sketch) indexOf(x float64) int {
	return int(math.Ceil(math.Log(x) * s.invLogGamma))
}

// valueOf returns bucket i's representative value 2γ^i/(γ+1), the point
// minimizing the worst-case relative error over the bucket's range.
func (s *Sketch) valueOf(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Merge folds o into s; o is not modified. The sketches must have been
// created with the same accuracy. Merging is exactly associative and
// commutative: any merge tree over the same sample multiset produces the
// identical final state (see the type comment). The only caveat is the
// bucket-collapse safety valve, which is deterministic but, if it ever
// fired mid-tree, could depend on merge order; with the default accuracy
// and bin budget it needs >10^35 dynamic range to trigger.
func (s *Sketch) Merge(o *Sketch) {
	if o == s {
		panic("stats: Sketch.Merge with itself")
	}
	if o.alpha != s.alpha {
		panic(fmt.Sprintf("stats: merging sketches with different accuracies (%v vs %v)", s.alpha, o.alpha))
	}
	if o.count == 0 {
		return
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	if !s.spilled && !o.spilled && len(s.exact)+len(o.exact) <= sketchExactCap {
		s.exact = append(s.exact, o.exact...)
		return
	}
	if !s.spilled {
		s.spill()
	}
	if !o.spilled {
		for _, x := range o.exact {
			s.bucketAdd(x, 1)
		}
		return
	}
	s.zeros += o.zeros
	s.pos.merge(&o.pos)
	s.neg.merge(&o.neg)
}

// Quantile returns the estimated q-quantile (0 ≤ q ≤ 1). While the sketch
// holds ≤ sketchExactCap samples the answer is bit-identical to
// Quantile(samples, q); afterwards it carries the documented ≤ α relative
// value error. Panics on an empty sketch, mirroring Quantile.
func (s *Sketch) Quantile(q float64) float64 {
	return s.Quantiles(q)[0]
}

// Quantiles returns the estimates for each q in qs with one pass.
func (s *Sketch) Quantiles(qs ...float64) []float64 {
	if s.count == 0 {
		panic("stats: Quantile of empty sketch")
	}
	out := make([]float64, len(qs))
	if !s.spilled {
		sorted := make([]float64, len(s.exact))
		copy(sorted, s.exact)
		slices.Sort(sorted)
		for i, q := range qs {
			out[i] = quantileSorted(sorted, q)
		}
		return out
	}
	for i, q := range qs {
		out[i] = s.bucketQuantile(q)
	}
	return out
}

// bucketQuantile walks the stores in value order — negatives from most to
// least negative, then zeros, then positives ascending — to the bucket
// containing the requested order statistic.
func (s *Sketch) bucketQuantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Round(q * float64(s.count-1))) // 0-based order statistic
	var cum int64
	// Negative store: bucket index i holds values with γ^(i−1) < −x ≤ γ^i,
	// so larger i means more negative; walk indices descending.
	for j := len(s.neg.counts) - 1; j >= 0; j-- {
		c := s.neg.counts[j]
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			return clamp(-s.valueOf(s.neg.offset+j), s.min, s.max)
		}
	}
	cum += s.zeros
	if cum > rank {
		return 0
	}
	for j, c := range s.pos.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			return clamp(s.valueOf(s.pos.offset+j), s.min, s.max)
		}
	}
	// Unreachable when counts are consistent; fall back to the maximum.
	return s.max
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Reset restores the empty state, retaining capacity. A reset sketch is
// indistinguishable from a fresh one with the same accuracy.
func (s *Sketch) Reset() {
	s.exact = s.exact[:0]
	s.spilled = false
	s.pos.reset()
	s.neg.reset()
	s.zeros = 0
	s.count = 0
	s.min = 0
	s.max = 0
}

// sketchStore is one sign's contiguous bucket-count window: counts[j] is
// the count of bucket index offset+j.
type sketchStore struct {
	counts []int64
	offset int
}

func (st *sketchStore) reset() {
	st.counts = st.counts[:0]
	st.offset = 0
}

func (st *sketchStore) add(idx int, n int64) {
	st.ensure(idx)
	st.counts[idx-st.offset] += n
}

// ensure grows the window to include bucket idx, collapsing the
// lowest-magnitude buckets if the window would exceed sketchMaxBins.
func (st *sketchStore) ensure(idx int) {
	if len(st.counts) == 0 {
		st.offset = idx
		st.counts = append(st.counts, 0)
		return
	}
	if idx < st.offset {
		gap := st.offset - idx
		st.counts = append(st.counts, make([]int64, gap)...)
		copy(st.counts[gap:], st.counts[:len(st.counts)-gap])
		for j := 0; j < gap; j++ {
			st.counts[j] = 0
		}
		st.offset = idx
	}
	if top := st.offset + len(st.counts); idx >= top {
		st.counts = append(st.counts, make([]int64, idx-top+1)...)
	}
	if len(st.counts) > sketchMaxBins {
		// Safety valve: fold everything below the cut into the lowest kept
		// bucket. Only reachable at >10^35 dynamic range under the default
		// accuracy.
		cut := len(st.counts) - sketchMaxBins
		var folded int64
		for j := 0; j < cut; j++ {
			folded += st.counts[j]
		}
		st.counts = st.counts[:copy(st.counts, st.counts[cut:])]
		st.offset += cut
		st.counts[0] += folded
	}
}

func (st *sketchStore) merge(o *sketchStore) {
	for j, c := range o.counts {
		if c != 0 {
			st.add(o.offset+j, c)
		}
	}
}

// Merge folds another summary into s using the standard parallel-variance
// combination. The result is mathematically exact but, being floating
// point, not bit-identical to sequentially Adding the same samples — which
// is why the streaming aggregation path that uses it sits behind a flag
// while the exact path remains the default for paper tables.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}
