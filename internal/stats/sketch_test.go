package stats

import (
	"math"
	"slices"
	"testing"

	"timedice/internal/rng"
)

var sketchQs = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// adversarialSamples builds the distributions the documented error bound is
// tested on: bimodal (two well-separated normal modes), heavy-tail
// (lognormal with σ=2), and constant.
func adversarialSamples(name string, n int, seed uint64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	switch name {
	case "bimodal":
		for i := range xs {
			if r.Bool(0.5) {
				xs[i] = 10 + r.NormFloat64()
			} else {
				xs[i] = 1000 + 30*r.NormFloat64()
			}
		}
	case "heavytail":
		for i := range xs {
			xs[i] = math.Exp(2 * r.NormFloat64())
		}
	case "constant":
		for i := range xs {
			xs[i] = 7.3
		}
	default:
		panic("unknown distribution " + name)
	}
	return xs
}

// TestSketchExactModeMatchesQuantiles pins the small-N fallback: at or
// below the exact capacity, sketch answers are bit-identical to the
// package's exact quantile functions.
func TestSketchExactModeMatchesQuantiles(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, sketchExactCap)
	for i := range xs {
		xs[i] = r.NormFloat64() * 100
	}
	s := NewSketch()
	for _, x := range xs {
		s.Add(x)
	}
	got := s.Quantiles(sketchQs...)
	want := Quantiles(xs, sketchQs...)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("q=%v: sketch %v != exact %v", sketchQs[i], got[i], want[i])
		}
	}
	if s.Min() != Quantile(xs, 0) || s.Max() != Quantile(xs, 1) {
		t.Errorf("min/max mismatch: %v/%v", s.Min(), s.Max())
	}
	if s.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", s.N(), len(xs))
	}
}

// TestSketchRelativeErrorBound verifies the documented guarantee on the
// adversarial distributions: once spilled, the estimate for quantile q is
// within relative error α of the order statistic at rank round(q·(n−1)).
func TestSketchRelativeErrorBound(t *testing.T) {
	for _, name := range []string{"bimodal", "heavytail", "constant"} {
		xs := adversarialSamples(name, 50000, 11)
		s := NewSketch()
		for _, x := range xs {
			s.Add(x)
		}
		sorted := slices.Clone(xs)
		slices.Sort(sorted)
		for _, q := range sketchQs {
			rank := int(math.Round(q * float64(len(sorted)-1)))
			want := sorted[rank]
			got := s.Quantile(q)
			if err := math.Abs(got - want); err > s.Accuracy()*math.Abs(want)+1e-9 {
				t.Errorf("%s q=%v: est %v vs rank value %v, rel err %.4f > α=%v",
					name, q, got, want, err/math.Abs(want), s.Accuracy())
			}
		}
		// Estimates must be monotone in q.
		ests := s.Quantiles(sketchQs...)
		if !slices.IsSorted(ests) {
			t.Errorf("%s: quantile estimates not monotone: %v", name, ests)
		}
	}
}

// TestSketchMergeShardInvariance pins the order-independence contract: the
// same sample multiset sharded across any worker count, merged in any
// order and any association, yields bit-identical quantile answers.
func TestSketchMergeShardInvariance(t *testing.T) {
	xs := adversarialSamples("heavytail", 20000, 5)
	// Reference: one sequential sketch.
	ref := NewSketch()
	for _, x := range xs {
		ref.Add(x)
	}
	want := ref.Quantiles(sketchQs...)

	merge := func(parts []*Sketch, reverse bool) *Sketch {
		m := NewSketch()
		if reverse {
			for i := len(parts) - 1; i >= 0; i-- {
				m.Merge(parts[i])
			}
		} else {
			for _, p := range parts {
				m.Merge(p)
			}
		}
		return m
	}
	for _, workers := range []int{1, 2, 3, 8, 16} {
		parts := make([]*Sketch, workers)
		for i := range parts {
			parts[i] = NewSketch()
		}
		for i, x := range xs {
			parts[i%workers].Add(x) // round-robin sharding
		}
		for _, reverse := range []bool{false, true} {
			m := merge(parts, reverse)
			if m.N() != ref.N() || m.Min() != ref.Min() || m.Max() != ref.Max() {
				t.Fatalf("workers=%d reverse=%v: N/min/max diverged", workers, reverse)
			}
			got := m.Quantiles(sketchQs...)
			if !slices.Equal(got, want) {
				t.Errorf("workers=%d reverse=%v: quantiles %v != sequential %v", workers, reverse, got, want)
			}
		}
		// Pairwise merge tree (different association than the linear fold).
		for len(parts) > 1 {
			var next []*Sketch
			for i := 0; i < len(parts); i += 2 {
				if i+1 < len(parts) {
					parts[i].Merge(parts[i+1])
				}
				next = append(next, parts[i])
			}
			parts = next
		}
		if got := parts[0].Quantiles(sketchQs...); !slices.Equal(got, want) {
			t.Errorf("workers=%d tree merge: quantiles %v != sequential %v", workers, got, want)
		}
	}
}

// TestSketchExactMergeStaysExact: merging small sketches whose union fits
// the exact buffer keeps bit-exact answers regardless of merge order.
func TestSketchExactMergeStaysExact(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = r.Float64() * 1e6
	}
	a, b := NewSketch(), NewSketch()
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	got := a.Quantiles(sketchQs...)
	want := Quantiles(xs, sketchQs...)
	if !slices.Equal(got, want) {
		t.Errorf("merged exact-mode quantiles diverged from exact: %v vs %v", got, want)
	}
}

func TestSketchZerosAndNegatives(t *testing.T) {
	s := NewSketch()
	xs := make([]float64, 0, 3000)
	r := rng.New(13)
	for i := 0; i < 3000; i++ {
		var x float64
		switch i % 3 {
		case 0:
			x = 0
		case 1:
			x = -math.Exp(r.NormFloat64())
		default:
			x = math.Exp(r.NormFloat64())
		}
		xs = append(xs, x)
		s.Add(x)
	}
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	for _, q := range sketchQs {
		rank := int(math.Round(q * float64(len(sorted)-1)))
		want := sorted[rank]
		got := s.Quantile(q)
		if err := math.Abs(got - want); err > s.Accuracy()*math.Abs(want)+1e-9 {
			t.Errorf("q=%v: est %v vs rank value %v", q, got, want)
		}
	}
}

func TestSketchResetReuse(t *testing.T) {
	s := NewSketch()
	for i := 0; i < 5000; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
	fresh := NewSketch()
	for i := 0; i < 2000; i++ {
		s.Add(float64(i) * 1.5)
		fresh.Add(float64(i) * 1.5)
	}
	if got, want := s.Quantiles(sketchQs...), fresh.Quantiles(sketchQs...); !slices.Equal(got, want) {
		t.Errorf("reused sketch diverged from fresh: %v vs %v", got, want)
	}
}

func TestSketchPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("empty quantile", func() { NewSketch().Quantile(0.5) })
	expectPanic("NaN add", func() { NewSketch().Add(math.NaN()) })
	expectPanic("accuracy mismatch merge", func() {
		NewSketch().Merge(NewSketchAccuracy(0.05))
	})
	expectPanic("bad accuracy", func() { NewSketchAccuracy(1.5) })
	expectPanic("self merge", func() { s := NewSketch(); s.Merge(s) })
}

// TestSummaryMergeMatchesSequential checks the parallel-variance combine
// against a single sequential pass within floating-point tolerance.
func TestSummaryMergeMatchesSequential(t *testing.T) {
	r := rng.New(21)
	var seq Summary
	parts := make([]Summary, 4)
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()*50 + 10
		seq.Add(x)
		parts[i%4].Add(x)
	}
	var merged Summary
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.N() != seq.N() || merged.Min() != seq.Min() || merged.Max() != seq.Max() {
		t.Fatal("N/min/max diverged")
	}
	if d := math.Abs(merged.Mean() - seq.Mean()); d > 1e-9 {
		t.Errorf("mean diverged by %v", d)
	}
	if d := math.Abs(merged.Std() - seq.Std()); d > 1e-9*seq.Std() {
		t.Errorf("std diverged by %v", d)
	}
	// Merging an empty summary is a no-op; merging into empty copies.
	var empty Summary
	before := merged
	merged.Merge(&empty)
	if merged != before {
		t.Error("merging empty changed the summary")
	}
	var dst Summary
	dst.Merge(&seq)
	if dst != seq {
		t.Error("merge into empty did not copy")
	}
}
