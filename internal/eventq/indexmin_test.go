package eventq

import (
	"slices"
	"testing"

	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// linearMin is the O(n) reference for MinKey.
func linearMin(keys []vtime.Time) vtime.Time {
	m := vtime.Infinity
	for _, k := range keys {
		if k < m {
			m = k
		}
	}
	return m
}

// linearDue is the O(n) reference for CollectDue, sorted by id.
func linearDue(keys []vtime.Time, t vtime.Time) []int32 {
	var out []int32
	for i, k := range keys {
		if k <= t {
			out = append(out, int32(i))
		}
	}
	return out
}

// TestIndexMinAgainstLinearReference drives random key updates through the
// heap and cross-checks MinKey and CollectDue against a plain slice after
// every operation, for a range of universe sizes spanning partial bottom
// levels of the 4-ary layout.
func TestIndexMinAgainstLinearReference(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 2, 3, 4, 5, 16, 17, 37, 64, 100} {
		q := NewIndexMin(n)
		ref := make([]vtime.Time, n)
		var due []int32
		for op := 0; op < 2000; op++ {
			i := int(uint64(r.Intn(n)))
			k := vtime.Time(uint64(r.Intn(50)))
			q.Update(i, k)
			ref[i] = k

			if got, want := q.MinKey(), linearMin(ref); got != want {
				t.Fatalf("n=%d op=%d: MinKey=%v want %v", n, op, got, want)
			}
			thresh := vtime.Time(uint64(r.Intn(55)))
			due = q.CollectDue(thresh, due[:0])
			slices.Sort(due)
			want := linearDue(ref, thresh)
			if !slices.Equal(due, want) {
				t.Fatalf("n=%d op=%d: CollectDue(%v)=%v want %v", n, op, thresh, due, want)
			}
		}
		// Internal consistency: pos and heap must stay inverse permutations.
		for i := 0; i < n; i++ {
			if q.heap[q.pos[i]] != int32(i) {
				t.Fatalf("n=%d: heap/pos inconsistent at %d", n, i)
			}
		}
	}
}

func TestIndexMinInitialAndReset(t *testing.T) {
	q := NewIndexMin(5)
	// All keys start at zero: everything is due at t=0, min is zero.
	if got := q.MinKey(); got != 0 {
		t.Fatalf("initial MinKey = %v, want 0", got)
	}
	due := q.CollectDue(0, nil)
	slices.Sort(due)
	if !slices.Equal(due, []int32{0, 1, 2, 3, 4}) {
		t.Fatalf("initial CollectDue(0) = %v", due)
	}
	for i := 0; i < 5; i++ {
		q.Update(i, vtime.Time(10+i))
	}
	if got := q.CollectDue(5, nil); len(got) != 0 {
		t.Fatalf("CollectDue(5) after updates = %v, want empty", got)
	}
	q.Reset()
	if got := q.MinKey(); got != 0 {
		t.Fatalf("MinKey after Reset = %v, want 0", got)
	}
	due = q.CollectDue(0, due[:0])
	if len(due) != 5 {
		t.Fatalf("CollectDue(0) after Reset returned %d ids, want 5", len(due))
	}
}

func TestIndexMinEmpty(t *testing.T) {
	q := NewIndexMin(0)
	if got := q.MinKey(); got != vtime.Infinity {
		t.Fatalf("empty MinKey = %v, want Infinity", got)
	}
	if got := q.CollectDue(vtime.Infinity, nil); len(got) != 0 {
		t.Fatalf("empty CollectDue = %v", got)
	}
}

// TestIndexMinSteadyStateZeroAlloc pins the allocation-free contract of the
// hot-path operations once the scratch stack has warmed up.
func TestIndexMinSteadyStateZeroAlloc(t *testing.T) {
	q := NewIndexMin(64)
	buf := make([]int32, 0, 64)
	r := rng.New(7)
	// Warm the scratch stack to its high-water mark.
	q.CollectDue(vtime.Infinity, buf[:0])
	allocs := testing.AllocsPerRun(100, func() {
		i := r.Intn(64)
		q.Update(i, vtime.Time(uint64(r.Intn(1000))))
		buf = q.CollectDue(vtime.Time(uint64(r.Intn(1000))), buf[:0])
		_ = q.MinKey()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ops allocated %.1f/op, want 0", allocs)
	}
}

// TestIndexMinRangeMatchesFull is the shard-composition property: a set of
// range heaps covering contiguous disjoint shards must answer CollectDue and
// MinKey exactly like one full-universe heap fed the identical updates, with
// the shard-order concatenation of sorted per-shard due sets equal to the
// sorted full due set.
func TestIndexMinRangeMatchesFull(t *testing.T) {
	const n = 97
	bounds := []int{0, 13, 14, 40, 64, 97} // uneven shards, one singleton
	full := NewIndexMin(n)
	var shards []*IndexMin
	for s := 0; s+1 < len(bounds); s++ {
		shards = append(shards, NewIndexMinRange(bounds[s], bounds[s+1]))
	}
	shardOf := func(i int) *IndexMin {
		for s := 0; s+1 < len(bounds); s++ {
			if i < bounds[s+1] {
				return shards[s]
			}
		}
		t.Fatalf("no shard for %d", i)
		return nil
	}
	r := rng.New(42)
	fullDue := make([]int32, 0, n)
	shardDue := make([]int32, 0, n)
	one := make([]int32, 0, n)
	for round := 0; round < 2000; round++ {
		i := r.Intn(n)
		k := vtime.Time(uint64(r.Intn(500)))
		full.Update(i, k)
		shardOf(i).Update(i, k)
		if full.Key(i) != shardOf(i).Key(i) {
			t.Fatalf("round %d: Key(%d) full %v shard %v", round, i, full.Key(i), shardOf(i).Key(i))
		}
		min := vtime.Infinity
		for _, q := range shards {
			if m := q.MinKey(); m < min {
				min = m
			}
		}
		if got := full.MinKey(); got != min {
			t.Fatalf("round %d: MinKey full %v shard-fold %v", round, got, min)
		}
		tq := vtime.Time(uint64(r.Intn(500)))
		fullDue = full.CollectDue(tq, fullDue[:0])
		slices.Sort(fullDue)
		shardDue = shardDue[:0]
		for _, q := range shards {
			one = q.CollectDue(tq, one[:0])
			slices.Sort(one)
			shardDue = append(shardDue, one...)
		}
		if !slices.Equal(fullDue, shardDue) {
			t.Fatalf("round %d: due sets differ at t=%v:\nfull  %v\nshard %v", round, tq, fullDue, shardDue)
		}
	}
}

// TestIndexMinRangeBasics covers the base-offset bookkeeping directly:
// global ids in, global ids out, empty ranges legal.
func TestIndexMinRangeBasics(t *testing.T) {
	q := NewIndexMinRange(10, 15)
	if q.Len() != 5 || q.Base() != 10 {
		t.Fatalf("Len=%d Base=%d, want 5, 10", q.Len(), q.Base())
	}
	q.Update(12, 7)
	q.Update(14, 3)
	if got := q.Key(12); got != 7 {
		t.Fatalf("Key(12) = %v, want 7", got)
	}
	if got := q.MinKey(); got != 0 {
		t.Fatalf("MinKey = %v, want 0 (untouched elements)", got)
	}
	due := q.CollectDue(3, nil)
	slices.Sort(due)
	if want := []int32{10, 11, 13, 14}; !slices.Equal(due, want) {
		t.Fatalf("CollectDue(3) = %v, want %v", due, want)
	}
	empty := NewIndexMinRange(5, 5)
	if got := empty.MinKey(); got != vtime.Infinity {
		t.Fatalf("empty range MinKey = %v, want Infinity", got)
	}
	if got := empty.CollectDue(vtime.Infinity, nil); len(got) != 0 {
		t.Fatalf("empty range CollectDue = %v", got)
	}
}
