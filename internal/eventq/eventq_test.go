package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"timedice/internal/rng"
	"timedice/internal/vtime"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	if q.PeekTime() != vtime.Infinity {
		t.Error("empty PeekTime should be Infinity")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty should report !ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(vtime.Time(30), "c")
	q.Push(vtime.Time(10), "a")
	q.Push(vtime.Time(20), "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		_, v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("pop = %q, want %q", v, w)
		}
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(vtime.Time(5), i)
	}
	for i := 0; i < 100; i++ {
		_, v, _ := q.Pop()
		if v != i {
			t.Fatalf("equal-time events out of insertion order: got %d at pos %d", v, i)
		}
	}
}

func TestPopUntil(t *testing.T) {
	var q Queue[int]
	for i := 1; i <= 10; i++ {
		q.Push(vtime.Time(i*10), i)
	}
	got := q.PopUntil(vtime.Time(35), nil)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("PopUntil(35) = %v", got)
	}
	if q.Len() != 7 {
		t.Errorf("remaining %d, want 7", q.Len())
	}
	if q.PeekTime() != vtime.Time(40) {
		t.Errorf("next at %v, want 40us", q.PeekTime())
	}
}

// TestPopUntilAppendsToScratch pins the scratch-slice contract: draining into
// a retained buffer with enough capacity performs zero allocations, and the
// drained events land after any existing elements.
func TestPopUntilAppendsToScratch(t *testing.T) {
	var q Queue[int]
	buf := make([]int, 0, 16)
	buf = append(buf, -1)
	for i := 1; i <= 5; i++ {
		q.Push(vtime.Time(i), i)
	}
	buf = q.PopUntil(vtime.Time(3), buf)
	if len(buf) != 4 || buf[0] != -1 || buf[1] != 1 || buf[3] != 3 {
		t.Fatalf("PopUntil appended wrong contents: %v", buf)
	}

	var q2 Queue[int]
	scratch := make([]int, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 1; i <= 8; i++ {
			q2.Push(vtime.Time(i), i)
		}
		scratch = q2.PopUntil(vtime.Time(8), scratch[:0])
		if len(scratch) != 8 {
			t.Fatal("drain lost events")
		}
	})
	if allocs != 0 {
		t.Errorf("PopUntil into warmed scratch allocates %.1f times, want 0", allocs)
	}
}

func TestReset(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Reset()
	if q.Len() != 0 || q.PeekTime() != vtime.Infinity {
		t.Error("Reset did not clear the queue")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue[int]
		sorted := make([]int64, len(times))
		for i, tm := range times {
			at := int64(tm) + 40000
			q.Push(vtime.Time(at), i)
			sorted[i] = at
		}
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for _, want := range sorted {
			at, _, ok := q.Pop()
			if !ok || int64(at) != want {
				return false
			}
		}
		_, _, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	r := rng.New(99)
	var q Queue[int64]
	var last vtime.Time
	pushed, popped := 0, 0
	for step := 0; step < 10000; step++ {
		if q.Len() == 0 || r.Bool(0.6) {
			at := last.Add(vtime.Duration(r.Intn(100)))
			q.Push(at, int64(at))
			pushed++
		} else {
			at, v, _ := q.Pop()
			if vtime.Time(v) != at {
				t.Fatal("payload mismatch")
			}
			if at < last {
				t.Fatalf("time went backwards: %v after %v", at, last)
			}
			last = at
			popped++
		}
	}
	if pushed == 0 || popped == 0 {
		t.Fatal("degenerate run")
	}
}
