// Package eventq implements a deterministic priority queue of timed events
// for discrete-event simulation. Events with equal timestamps are delivered
// in insertion order (FIFO), which keeps simulations reproducible regardless
// of heap internals.
package eventq

import (
	"cmp"
	"slices"

	"timedice/internal/vtime"
)

// Queue is a min-heap of values keyed by (time, insertion sequence).
// The zero value is an empty, ready-to-use queue.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	at  vtime.Time
	seq uint64
	val T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules val at instant at.
func (q *Queue[T]) Push(at vtime.Time, val T) {
	q.items = append(q.items, entry[T]{at: at, seq: q.seq, val: val})
	q.seq++
	q.up(len(q.items) - 1)
}

// PeekTime returns the timestamp of the earliest event, or vtime.Infinity if
// the queue is empty.
func (q *Queue[T]) PeekTime() vtime.Time {
	if len(q.items) == 0 {
		return vtime.Infinity
	}
	return q.items[0].at
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (q *Queue[T]) Pop() (at vtime.Time, val T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return vtime.Infinity, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.at, top.val, true
}

// PopUntil removes all events with timestamp <= t and appends them, in
// order, to buf, returning the extended slice. Callers on hot paths pass a
// retained scratch slice (`buf[:0]`) so the drain is allocation-free once the
// scratch has grown to the queue's high-water mark.
func (q *Queue[T]) PopUntil(t vtime.Time, buf []T) []T {
	for len(q.items) > 0 && q.items[0].at <= t {
		_, v, _ := q.Pop()
		buf = append(buf, v)
	}
	return buf
}

// Reset discards all pending events.
func (q *Queue[T]) Reset() {
	q.items = q.items[:0]
	q.seq = 0
}

// Entry is the exported view of one pending event: its delivery instant and
// value. A queue's entry list in delivery order is a complete serialization
// of its observable behavior — delivery depends only on (time, insertion
// order), so AppendAll followed by Load reproduces every future Pop exactly.
type Entry[T any] struct {
	At  vtime.Time
	Val T
}

// AppendAll appends every pending event to buf in delivery order without
// disturbing the queue, returning the extended slice. It sorts a scratch copy
// of the heap, so it allocates; snapshot paths only, never the hot loop.
func (q *Queue[T]) AppendAll(buf []Entry[T]) []Entry[T] {
	tmp := make([]entry[T], len(q.items))
	copy(tmp, q.items)
	slices.SortFunc(tmp, func(a, b entry[T]) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.seq, b.seq)
	})
	for _, e := range tmp {
		buf = append(buf, Entry[T]{At: e.at, Val: e.val})
	}
	return buf
}

// Load replaces the queue's contents with entries, which must be in delivery
// order (non-decreasing At). Insertion order breaks the remaining ties, so a
// queue loaded from AppendAll's output is observationally identical to the
// original — including tie-breaking against values pushed later, which always
// sort after the reloaded ones just as they would after the originals.
func (q *Queue[T]) Load(entries []Entry[T]) {
	q.Reset()
	for _, e := range entries {
		q.Push(e.At, e.Val)
	}
}

// CloneInto makes dst an exact structural copy of q (same heap layout, same
// insertion counter), retaining dst's capacity where possible.
func (q *Queue[T]) CloneInto(dst *Queue[T]) {
	dst.items = append(dst.items[:0], q.items...)
	dst.seq = q.seq
}

func (q *Queue[T]) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
