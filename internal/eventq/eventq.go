// Package eventq implements a deterministic priority queue of timed events
// for discrete-event simulation. Events with equal timestamps are delivered
// in insertion order (FIFO), which keeps simulations reproducible regardless
// of heap internals.
package eventq

import "timedice/internal/vtime"

// Queue is a min-heap of values keyed by (time, insertion sequence).
// The zero value is an empty, ready-to-use queue.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	at  vtime.Time
	seq uint64
	val T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules val at instant at.
func (q *Queue[T]) Push(at vtime.Time, val T) {
	q.items = append(q.items, entry[T]{at: at, seq: q.seq, val: val})
	q.seq++
	q.up(len(q.items) - 1)
}

// PeekTime returns the timestamp of the earliest event, or vtime.Infinity if
// the queue is empty.
func (q *Queue[T]) PeekTime() vtime.Time {
	if len(q.items) == 0 {
		return vtime.Infinity
	}
	return q.items[0].at
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (q *Queue[T]) Pop() (at vtime.Time, val T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return vtime.Infinity, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.at, top.val, true
}

// PopUntil removes all events with timestamp <= t and appends them, in
// order, to buf, returning the extended slice. Callers on hot paths pass a
// retained scratch slice (`buf[:0]`) so the drain is allocation-free once the
// scratch has grown to the queue's high-water mark.
func (q *Queue[T]) PopUntil(t vtime.Time, buf []T) []T {
	for len(q.items) > 0 && q.items[0].at <= t {
		_, v, _ := q.Pop()
		buf = append(buf, v)
	}
	return buf
}

// Reset discards all pending events.
func (q *Queue[T]) Reset() {
	q.items = q.items[:0]
	q.seq = 0
}

func (q *Queue[T]) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
