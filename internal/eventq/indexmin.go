package eventq

import "timedice/internal/vtime"

// IndexMin is a 4-ary indexed min-heap over the fixed element universe
// 0..n-1, keyed by vtime.Time. Every element is always resident — there is
// no push or pop, only key updates — which matches the engine's use: one
// slot per partition holding that partition's next-local-event time.
//
// The structure supports three O(log₄ n)-or-better operations the engine's
// hot path needs:
//
//   - Update(i, k): move element i to key k (decrease- or increase-key).
//   - MinKey(): the smallest key, for the horizon reduction.
//   - CollectDue(t, buf): every element with key ≤ t, by pruned heap
//     descent — cost O(due·4), independent of n when nothing is due.
//
// Heap order among equal keys is unspecified (it depends on the update
// history); callers that need a deterministic ordering of due elements must
// sort the CollectDue result themselves. All operations are allocation-free
// once the internal scratch stack has grown to its high-water mark.
type IndexMin struct {
	key  []vtime.Time // element id - base -> key
	heap []int32      // heap position -> element id - base
	pos  []int32      // element id - base -> heap position
	// base shifts the element universe: the heap covers base..base+len-1.
	// The engine's per-shard heaps use it so every heap speaks global
	// partition indices while storing only its own contiguous slice.
	base int32
	// stack is the retained scratch for CollectDue's pruned descent.
	stack []int32
}

// NewIndexMin returns a heap over elements 0..n-1, all with key zero.
func NewIndexMin(n int) *IndexMin { return NewIndexMinRange(0, n) }

// NewIndexMinRange returns a heap over the contiguous element universe
// lo..hi-1, all with key zero. Every method speaks the global ids of that
// range — the base offset is internal — so a set of range heaps covering
// disjoint shards composes transparently with a single full-universe heap.
func NewIndexMinRange(lo, hi int) *IndexMin {
	n := hi - lo
	q := &IndexMin{
		key:   make([]vtime.Time, n),
		heap:  make([]int32, n),
		pos:   make([]int32, n),
		base:  int32(lo),
		stack: make([]int32, 0, n),
	}
	for i := range q.heap {
		q.heap[i] = int32(i)
		q.pos[i] = int32(i)
	}
	return q
}

// Len returns the (fixed) number of elements.
func (q *IndexMin) Len() int { return len(q.key) }

// Base returns the smallest element id of the universe (0 for NewIndexMin).
func (q *IndexMin) Base() int { return int(q.base) }

// Key returns element i's current key.
func (q *IndexMin) Key(i int) vtime.Time { return q.key[int32(i)-q.base] }

// MinKey returns the smallest key, or vtime.Infinity if the heap is empty.
func (q *IndexMin) MinKey() vtime.Time {
	if len(q.heap) == 0 {
		return vtime.Infinity
	}
	return q.key[q.heap[0]]
}

// Update sets element i's key to k and restores heap order. Setting the key
// it already has is a no-op.
func (q *IndexMin) Update(i int, k vtime.Time) {
	e := int32(i) - q.base
	old := q.key[e]
	if k == old {
		return
	}
	q.key[e] = k
	if k < old {
		q.up(q.pos[e])
	} else {
		q.down(q.pos[e])
	}
}

// CollectDue appends to out the id of every element with key ≤ t and returns
// the extended slice, in unspecified order. Keys are not modified. The
// descent prunes any subtree whose root key exceeds t, so the cost is
// proportional to the number of due elements (times the arity), not to n.
func (q *IndexMin) CollectDue(t vtime.Time, out []int32) []int32 {
	if len(q.heap) == 0 || q.key[q.heap[0]] > t {
		return out
	}
	stack := append(q.stack[:0], 0)
	n := int32(len(q.heap))
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, q.base+q.heap[node])
		c := 4*node + 1
		for end := c + 4; c < end && c < n; c++ {
			if q.key[q.heap[c]] <= t {
				stack = append(stack, c)
			}
		}
	}
	q.stack = stack[:0]
	return out
}

// Reset restores the initial state: all keys zero, identity layout. Retains
// capacity.
func (q *IndexMin) Reset() {
	for i := range q.key {
		q.key[i] = 0
		q.heap[i] = int32(i)
		q.pos[i] = int32(i)
	}
}

func (q *IndexMin) swap(a, b int32) {
	ia, ib := q.heap[a], q.heap[b]
	q.heap[a], q.heap[b] = ib, ia
	q.pos[ia], q.pos[ib] = b, a
}

func (q *IndexMin) up(i int32) {
	for i > 0 {
		parent := (i - 1) >> 2
		if q.key[q.heap[i]] >= q.key[q.heap[parent]] {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *IndexMin) down(i int32) {
	n := int32(len(q.heap))
	for {
		smallest := i
		c := 4*i + 1
		for end := c + 4; c < end && c < n; c++ {
			if q.key[q.heap[c]] < q.key[q.heap[smallest]] {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
