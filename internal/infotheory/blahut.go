package infotheory

import "math"

// BlahutArimoto computes the capacity of a discrete memoryless channel given
// its transition matrix p[y|x] (rows: inputs, columns: outputs), maximizing
// the mutual information over the input distribution — the full
// C = max_{p(X)} (H(X) − H(X|R)) of the paper's §V-B1 rather than the
// uniform-input evaluation. It returns the capacity in bits and the
// capacity-achieving input distribution.
//
// The iteration is the classical alternating optimization (Blahut 1972,
// Arimoto 1972); it converges monotonically. tol bounds the capacity gap
// (default 1e-9 when ≤ 0); maxIter bounds the iterations (default 10_000
// when ≤ 0).
func BlahutArimoto(channel [][]float64, tol float64, maxIter int) (capacity float64, input []float64) {
	n := len(channel)
	if n == 0 {
		return 0, nil
	}
	m := len(channel[0])
	if m == 0 {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 10000
	}

	// Normalize rows defensively; drop all-zero rows from consideration by
	// giving them a uniform row (they will receive ~zero input mass anyway
	// only if they help, which a uniform row never does more than others).
	p := make([][]float64, n)
	for x := range channel {
		row := make([]float64, m)
		var sum float64
		for _, v := range channel[x] {
			if v > 0 {
				sum += v
			}
		}
		if sum == 0 {
			for y := range row {
				row[y] = 1 / float64(m)
			}
		} else {
			for y, v := range channel[x] {
				if v > 0 {
					row[y] = v / sum
				}
			}
		}
		p[x] = row
	}

	r := make([]float64, n)
	for x := range r {
		r[x] = 1 / float64(n)
	}
	q := make([]float64, m)
	d := make([]float64, n)

	for iter := 0; iter < maxIter; iter++ {
		// Output marginal q(y) = Σ_x r(x) p(y|x).
		for y := 0; y < m; y++ {
			q[y] = 0
		}
		for x := 0; x < n; x++ {
			if r[x] == 0 {
				continue
			}
			for y := 0; y < m; y++ {
				q[y] += r[x] * p[x][y]
			}
		}
		// d(x) = exp(Σ_y p(y|x) ln(p(y|x)/q(y))) — relative entropy weights.
		var z float64
		for x := 0; x < n; x++ {
			var kl float64
			for y := 0; y < m; y++ {
				if p[x][y] > 0 && q[y] > 0 {
					kl += p[x][y] * math.Log(p[x][y]/q[y])
				}
			}
			d[x] = r[x] * math.Exp(kl)
			z += d[x]
		}
		if z == 0 {
			return 0, r
		}
		// Capacity bounds: IL = log z is a lower bound; IU = max_x KL an
		// upper bound.
		var maxKL float64
		for x := 0; x < n; x++ {
			var kl float64
			for y := 0; y < m; y++ {
				if p[x][y] > 0 && q[y] > 0 {
					kl += p[x][y] * math.Log(p[x][y]/q[y])
				}
			}
			if kl > maxKL {
				maxKL = kl
			}
		}
		il := math.Log(z)
		for x := 0; x < n; x++ {
			r[x] = d[x] / z
		}
		if maxKL-il < tol {
			return il / math.Ln2, r
		}
	}
	// Return the lower bound at the iteration cap.
	for y := 0; y < m; y++ {
		q[y] = 0
	}
	for x := 0; x < n; x++ {
		for y := 0; y < m; y++ {
			q[y] += r[x] * p[x][y]
		}
	}
	var z float64
	for x := 0; x < n; x++ {
		var kl float64
		for y := 0; y < m; y++ {
			if p[x][y] > 0 && q[y] > 0 {
				kl += p[x][y] * math.Log(p[x][y]/q[y])
			}
		}
		z += r[x] * math.Exp(kl)
	}
	return math.Log(z) / math.Ln2, r
}

// OptimalCapacity runs Blahut–Arimoto on the empirical joint counts,
// returning the capacity over all input distributions. It is ≥ the
// uniform-input Capacity() up to estimation noise.
func (j *JointCounts) OptimalCapacity() float64 {
	n := len(j.Counts[0])
	channel := make([][]float64, 2)
	for x := 0; x < 2; x++ {
		row := make([]float64, n)
		var sum float64
		for _, c := range j.Counts[x] {
			sum += float64(c)
		}
		if sum == 0 {
			return 0
		}
		for y, c := range j.Counts[x] {
			row[y] = float64(c) / sum
		}
		channel[x] = row
	}
	c, _ := BlahutArimoto(channel, 1e-9, 10000)
	return c
}
