package infotheory

import (
	"math"
	"testing"

	"timedice/internal/rng"
)

func TestEntropy(t *testing.T) {
	cases := []struct {
		p    []float64
		want float64
	}{
		{[]float64{1, 1}, 1},
		{[]float64{1, 0}, 0},
		{[]float64{1, 1, 1, 1}, 2},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
		{[]float64{3, 1}, -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))},
	}
	for _, c := range cases {
		if got := Entropy(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Entropy(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPerfectChannel(t *testing.T) {
	// X fully determines the bin: H(X|R)=0, capacity 1.
	j := NewJointCounts(4)
	for i := 0; i < 500; i++ {
		j.Add(0, 0)
		j.Add(1, 3)
	}
	if h := j.ConditionalEntropy(); math.Abs(h) > 1e-12 {
		t.Errorf("H(X|R) = %v, want 0", h)
	}
	if c := j.Capacity(); math.Abs(c-1) > 1e-12 {
		t.Errorf("capacity = %v, want 1", c)
	}
	if mi := j.MutualInformation(); math.Abs(mi-1) > 1e-12 {
		t.Errorf("MI = %v, want 1", mi)
	}
}

func TestUselessChannel(t *testing.T) {
	// R independent of X: H(X|R)=H(X)=1, capacity 0.
	j := NewJointCounts(2)
	for i := 0; i < 500; i++ {
		j.Add(0, 0)
		j.Add(0, 1)
		j.Add(1, 0)
		j.Add(1, 1)
	}
	if h := j.ConditionalEntropy(); math.Abs(h-1) > 1e-12 {
		t.Errorf("H(X|R) = %v, want 1", h)
	}
	if c := j.Capacity(); c != 0 {
		t.Errorf("capacity = %v, want 0", c)
	}
}

func TestNoisyChannelMatchesBSC(t *testing.T) {
	// A binary symmetric channel with error rate e simulated empirically
	// should approach 1 - H2(e).
	r := rng.New(123)
	const e = 0.11
	j := NewJointCounts(2)
	for i := 0; i < 400000; i++ {
		x := r.Bit()
		y := x
		if r.Bool(e) {
			y = 1 - x
		}
		j.Add(x, y)
	}
	want := BinaryChannelCapacity(e)
	if got := j.Capacity(); math.Abs(got-want) > 0.01 {
		t.Errorf("empirical BSC capacity %v, want ≈%v", got, want)
	}
}

func TestBinaryChannelCapacity(t *testing.T) {
	if BinaryChannelCapacity(0) != 1 || BinaryChannelCapacity(1) != 1 {
		t.Error("degenerate error rates should give capacity 1")
	}
	if got := BinaryChannelCapacity(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("capacity at e=0.5 = %v, want 0", got)
	}
	// Symmetry around 0.5.
	if math.Abs(BinaryChannelCapacity(0.3)-BinaryChannelCapacity(0.7)) > 1e-12 {
		t.Error("capacity must be symmetric in e")
	}
}

func TestInputEntropySkewed(t *testing.T) {
	j := NewJointCounts(2)
	for i := 0; i < 300; i++ {
		j.Add(0, 0)
	}
	for i := 0; i < 100; i++ {
		j.Add(1, 1)
	}
	want := Entropy([]float64{3, 1})
	if got := j.InputEntropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("H(X) = %v, want %v", got, want)
	}
}

func TestEmptyJoint(t *testing.T) {
	j := NewJointCounts(3)
	if j.ConditionalEntropy() != 0 || j.MutualInformation() != 0 {
		t.Error("empty joint should be all zeros")
	}
}

func TestCapacityMonotoneInNoise(t *testing.T) {
	// Property: adding symmetric noise can only reduce capacity.
	r := rng.New(7)
	prev := 1.1
	for _, e := range []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		j := NewJointCounts(2)
		for i := 0; i < 100000; i++ {
			x := r.Bit()
			y := x
			if r.Bool(e) {
				y = 1 - x
			}
			j.Add(x, y)
		}
		c := j.Capacity()
		if c > prev+0.01 {
			t.Errorf("capacity increased with noise: e=%v c=%v prev=%v", e, c, prev)
		}
		prev = c
	}
}
