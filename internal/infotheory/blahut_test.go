package infotheory

import (
	"math"
	"testing"

	"timedice/internal/rng"
)

func TestBlahutArimotoBSC(t *testing.T) {
	// Binary symmetric channel: capacity 1−H2(e), achieved by uniform input.
	for _, e := range []float64{0, 0.05, 0.11, 0.25, 0.5} {
		channel := [][]float64{
			{1 - e, e},
			{e, 1 - e},
		}
		c, input := BlahutArimoto(channel, 1e-10, 0)
		want := BinaryChannelCapacity(e)
		if e == 0 || e == 1 {
			want = 1
		}
		if math.Abs(c-want) > 1e-6 {
			t.Errorf("BSC(e=%v): capacity %v, want %v", e, c, want)
		}
		if e > 0 && e < 0.5 && math.Abs(input[0]-0.5) > 1e-4 {
			t.Errorf("BSC(e=%v): optimal input %v, want uniform", e, input)
		}
	}
}

func TestBlahutArimotoBEC(t *testing.T) {
	// Binary erasure channel with erasure probability ε: capacity 1−ε.
	for _, eps := range []float64{0.1, 0.3, 0.7} {
		channel := [][]float64{
			{1 - eps, eps, 0},
			{0, eps, 1 - eps},
		}
		c, _ := BlahutArimoto(channel, 1e-10, 0)
		if math.Abs(c-(1-eps)) > 1e-6 {
			t.Errorf("BEC(ε=%v): capacity %v, want %v", eps, c, 1-eps)
		}
	}
}

func TestBlahutArimotoZChannel(t *testing.T) {
	// Z-channel with crossover 0.5: known capacity log2(5) − 2 ≈ 0.321928,
	// and the optimal input is NOT uniform.
	channel := [][]float64{
		{1, 0},
		{0.5, 0.5},
	}
	c, input := BlahutArimoto(channel, 1e-12, 0)
	want := math.Log2(5) - 2
	if math.Abs(c-want) > 1e-6 {
		t.Errorf("Z-channel: capacity %v, want %v", c, want)
	}
	if math.Abs(input[0]-0.5) < 0.05 {
		t.Errorf("Z-channel optimal input should be skewed, got %v", input)
	}
}

func TestBlahutArimotoDegenerate(t *testing.T) {
	if c, _ := BlahutArimoto(nil, 0, 0); c != 0 {
		t.Error("nil channel")
	}
	if c, _ := BlahutArimoto([][]float64{{}}, 0, 0); c != 0 {
		t.Error("empty rows")
	}
	// Useless channel (identical rows): capacity 0.
	c, _ := BlahutArimoto([][]float64{{0.5, 0.5}, {0.5, 0.5}}, 0, 0)
	if c > 1e-9 {
		t.Errorf("useless channel capacity %v", c)
	}
}

func TestOptimalCapacityDominatesUniform(t *testing.T) {
	// On an asymmetric empirical channel, the optimal capacity must be at
	// least the uniform-input mutual information.
	r := rng.New(77)
	j := NewJointCounts(3)
	for i := 0; i < 200000; i++ {
		x := r.Bit()
		var y int
		if x == 0 {
			y = 0 // input 0 is noiseless
		} else {
			y = 1 + r.Intn(2) // input 1 smears over bins 1-2
		}
		j.Add(x, y)
	}
	uniform := j.MutualInformation()
	opt := j.OptimalCapacity()
	if opt < uniform-1e-6 {
		t.Errorf("optimal %v below uniform-input MI %v", opt, uniform)
	}
	if opt > 1+1e-9 {
		t.Errorf("binary-input capacity above 1 bit: %v", opt)
	}
}
