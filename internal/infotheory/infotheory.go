// Package infotheory computes the information-theoretic covert-channel
// metrics of the paper's §V-B1: the conditional entropy H(X|R) of Eq. (6)
// and the channel capacity C = max_{p(X)} (H(X) − H(X|R)), evaluated — as
// the paper does — for a binary input X with uniform p(X), from an empirical
// joint sample of (X, R) with the response times R discretized into bins.
package infotheory

import (
	"math"
)

// log2 returns log₂(x).
func log2(x float64) float64 { return math.Log2(x) }

// Entropy returns H(p) in bits for a distribution given as non-negative
// weights (normalized internally). Zero-weight entries contribute nothing.
func Entropy(p []float64) float64 {
	var total float64
	for _, w := range p {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, w := range p {
		if w > 0 {
			q := w / total
			h -= q * log2(q)
		}
	}
	return h
}

// JointCounts is an empirical joint distribution of the binary channel input
// X ∈ {0,1} and the discretized observation R: Counts[x][bin].
type JointCounts struct {
	Counts [2][]int64
	Total  int64
}

// NewJointCounts allocates a joint table with n observation bins.
func NewJointCounts(n int) *JointCounts {
	return &JointCounts{Counts: [2][]int64{make([]int64, n), make([]int64, n)}}
}

// Add records one (x, bin) sample.
func (j *JointCounts) Add(x int, bin int) {
	j.Counts[x&1][bin]++
	j.Total++
}

// ConditionalEntropy returns H(X|R) in bits per observation, Eq. (6):
//
//	H(X|R) = Σ_R Σ_X Pr(X,R) · log( Pr(R) / Pr(X,R) ).
func (j *JointCounts) ConditionalEntropy() float64 {
	if j.Total == 0 {
		return 0
	}
	n := len(j.Counts[0])
	var h float64
	for bin := 0; bin < n; bin++ {
		pr := float64(j.Counts[0][bin]+j.Counts[1][bin]) / float64(j.Total)
		if pr == 0 {
			continue
		}
		for x := 0; x < 2; x++ {
			pxr := float64(j.Counts[x][bin]) / float64(j.Total)
			if pxr == 0 {
				continue
			}
			h += pxr * log2(pr/pxr)
		}
	}
	return h
}

// InputEntropy returns H(X) of the empirical input marginal.
func (j *JointCounts) InputEntropy() float64 {
	var c0, c1 float64
	for _, c := range j.Counts[0] {
		c0 += float64(c)
	}
	for _, c := range j.Counts[1] {
		c1 += float64(c)
	}
	return Entropy([]float64{c0, c1})
}

// MutualInformation returns I(X;R) = H(X) − H(X|R) in bits per observation.
func (j *JointCounts) MutualInformation() float64 {
	mi := j.InputEntropy() - j.ConditionalEntropy()
	if mi < 0 {
		return 0 // numerical noise on independent samples
	}
	return mi
}

// Capacity returns the paper's channel-capacity estimate: H(X) − H(X|R) with
// X uniform binary, i.e. 1 − H(X|R) when the sender's test bits were drawn
// uniformly (which the experiments ensure). It is clamped to [0, 1].
func (j *JointCounts) Capacity() float64 {
	c := 1 - j.ConditionalEntropy()
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// BinaryChannelCapacity computes the capacity of a binary symmetric channel
// with error rate e: 1 − H₂(e). It is the upper bound a decoder with
// accuracy (1−e) implies, used as a cross-check on the histogram-based
// estimate.
func BinaryChannelCapacity(errRate float64) float64 {
	if errRate <= 0 || errRate >= 1 {
		return 1
	}
	h2 := -errRate*log2(errRate) - (1-errRate)*log2(1-errRate)
	return 1 - h2
}
