//go:build timedice_mutation

package server

import "timedice/internal/vtime"

// replenishShort under the timedice_mutation tag: every boundary
// replenishment (polling/deferrable) delivers 100µs less than the full
// budget. The run stays self-consistent — the observer reports the shorted
// amount, the engine never overdraws — so only an oracle that knows the
// server contract ("a boundary replenish restores the full budget") can
// catch it. check's TestMutationOraclesFire asserts it does.
const replenishShort vtime.Duration = 100 * vtime.Microsecond
