// Package server implements the CPU-budget server algorithms that instantiate
// priority-based partitions (paper §II and §V-A): the polling server (the
// behaviour of LITMUS^RT's "sporadic-polling" server used by the paper's
// implementation), the deferrable server, and the sporadic server.
//
// A server owns the budget accounting of one partition: the maximum budget
// B_i, the replenishment period T_i, the remaining budget B_i(t), and the
// last replenishment time r_{i,t}. The last two are exactly the quantities
// the TimeDice schedulability test (Algorithm 3) reads at each decision point.
package server

import (
	"fmt"

	"timedice/internal/eventq"
	"timedice/internal/vtime"
)

// Policy selects the replenishment/consumption rule.
type Policy int

const (
	// Polling replenishes the budget to B at every period boundary and
	// discards whatever budget remains the moment the partition has no
	// pending workload. This matches the sporadic-polling server of
	// LITMUS^RT on which the paper's implementation is based.
	Polling Policy = iota + 1
	// Deferrable replenishes to B at every period boundary and retains
	// unused budget until the end of the period (Strosnider et al.).
	Deferrable
	// Sporadic replenishes each consumed chunk one period after the instant
	// consumption of that chunk began (Sprunt et al.), approximated at the
	// granularity of dispatch slices.
	Sporadic
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Polling:
		return "polling"
	case Deferrable:
		return "deferrable"
	case Sporadic:
		return "sporadic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Observer receives budget lifecycle callbacks from a Server. The
// hierarchical engine installs one per partition and forwards to the
// attached telemetry sink; with no observer the accounting paths skip a nil
// check and nothing else.
type Observer interface {
	// Replenished fires when budget is added: at the replenishment instant,
	// with the amount added and the budget remaining afterwards.
	Replenished(at vtime.Time, amount, remaining vtime.Duration)
	// Depleted fires when the budget reaches zero: discarded is 0 when
	// execution consumed it, or the discarded amount when an idle polling
	// server dropped it (NoteIdle).
	Depleted(at vtime.Time, discarded vtime.Duration)
}

// Server is the budget account of one partition. Create one with New.
type Server struct {
	budget vtime.Duration // B_i
	period vtime.Duration // T_i
	policy Policy

	remaining     vtime.Duration // B_i(t)
	lastReplenish vtime.Time     // r_{i,t}
	replQ         eventq.Queue[vtime.Duration]
	replBuf       []vtime.Duration // scratch for draining replQ without allocating
	obs           Observer
}

// SetObserver installs (or removes, with nil) the budget observer.
func (s *Server) SetObserver(o Observer) { s.obs = o }

// New returns a server with maximum budget b replenished every period t under
// the given policy. The budget is initially full with r_{i,0} = 0.
func New(b, t vtime.Duration, policy Policy) (*Server, error) {
	switch {
	case b <= 0:
		return nil, fmt.Errorf("server: budget must be positive, got %v", b)
	case t <= 0:
		return nil, fmt.Errorf("server: period must be positive, got %v", t)
	case b > t:
		return nil, fmt.Errorf("server: budget %v exceeds period %v", b, t)
	}
	switch policy {
	case Polling, Deferrable, Sporadic:
	default:
		return nil, fmt.Errorf("server: unknown policy %v", policy)
	}
	return &Server{budget: b, period: t, policy: policy, remaining: b}, nil
}

// MustNew is New but panics on error; for tests and static configurations.
func MustNew(b, t vtime.Duration, policy Policy) *Server {
	s, err := New(b, t, policy)
	if err != nil {
		panic(err)
	}
	return s
}

// Budget returns B_i.
func (s *Server) Budget() vtime.Duration { return s.budget }

// Period returns T_i.
func (s *Server) Period() vtime.Duration { return s.period }

// PolicyKind returns the replenishment policy.
func (s *Server) PolicyKind() Policy { return s.policy }

// Remaining returns B_i(t), the budget left right now.
func (s *Server) Remaining() vtime.Duration { return s.remaining }

// Active reports whether the partition is active in the paper's sense:
// non-zero remaining budget.
func (s *Server) Active() bool { return s.remaining > 0 }

// LastReplenish returns r_{i,t}, the most recent replenishment instant not
// later than the current instant. For the sporadic server this is the most
// recent period boundary (used by analysis as the conservative anchor).
func (s *Server) LastReplenish() vtime.Time { return s.lastReplenish }

// NextReplenish returns the earliest future instant at which budget will be
// added.
func (s *Server) NextReplenish() vtime.Time {
	periodic := s.lastReplenish.Add(s.period)
	if s.policy == Sporadic {
		if t := s.replQ.PeekTime(); t < periodic {
			return t
		}
	}
	return periodic
}

// AdvanceTo applies every replenishment event with instant <= now. The engine
// calls it at every decision point before reading Remaining.
func (s *Server) AdvanceTo(now vtime.Time) {
	if s.policy == Sporadic {
		s.replBuf = s.replQ.PopUntil(now, s.replBuf[:0])
		for _, amount := range s.replBuf {
			before := s.remaining
			s.remaining += amount
			if s.remaining > s.budget {
				s.remaining = s.budget
			}
			if s.obs != nil && s.remaining > before {
				// The queue does not retain the exact replenishment instant,
				// so the event is stamped at the delivery instant `now` (at
				// most one decision point later).
				s.obs.Replenished(now, s.remaining-before, s.remaining)
			}
		}
		for s.lastReplenish.Add(s.period) <= now {
			s.lastReplenish = s.lastReplenish.Add(s.period)
		}
		return
	}
	for s.lastReplenish.Add(s.period) <= now {
		s.lastReplenish = s.lastReplenish.Add(s.period)
		target := s.budget - replenishShort // replenishShort is 0 outside mutation builds
		if s.obs != nil && s.remaining < target {
			s.obs.Replenished(s.lastReplenish, target-s.remaining, target)
		}
		s.remaining = target
	}
}

// Consume depletes d of budget for execution beginning at instant start.
// It panics if d exceeds the remaining budget; the engine never grants a
// slice longer than Remaining.
func (s *Server) Consume(start vtime.Time, d vtime.Duration) {
	if d < 0 || d > s.remaining {
		panic(fmt.Sprintf("server: consume %v with %v remaining", d, s.remaining))
	}
	s.remaining -= d
	if s.policy == Sporadic && d > 0 {
		s.replQ.Push(start.Add(s.period), d)
	}
	if s.obs != nil && d > 0 && s.remaining == 0 {
		s.obs.Depleted(start.Add(d), 0)
	}
}

// NoteIdle tells the server that, at the current instant, the partition has
// no pending workload. A polling server discards its remaining budget (the
// defining property that prevents deferred-execution interference); the other
// policies retain it. It returns true if budget was discarded.
func (s *Server) NoteIdle(now vtime.Time) bool {
	if s.policy == Polling && s.remaining > 0 {
		discarded := s.remaining
		s.remaining = 0
		if s.obs != nil {
			s.obs.Depleted(now, discarded)
		}
		return true
	}
	return false
}

// Deadline returns d_{i,t} = r_{i,t} + T_i, the current budget deadline used
// by the weighted random selection and by the schedulability test (Eq. 3).
func (s *Server) Deadline() vtime.Time { return s.lastReplenish.Add(s.period) }

// Utilization returns B_i/T_i.
func (s *Server) Utilization() float64 {
	return float64(s.budget) / float64(s.period)
}

// RemainingUtilization returns u_{i,t} = B_i(t) / (d_{i,t} - t), the quantity
// the weighted selection of §IV-A2 assigns as the lottery weight. It returns
// 0 when the deadline is not in the future.
func (s *Server) RemainingUtilization(now vtime.Time) float64 {
	den := s.Deadline().Sub(now)
	if den <= 0 {
		return 0
	}
	return float64(s.remaining) / float64(den)
}

// Reset restores the initial state: full budget, r = 0, no pending sporadic
// replenishments.
func (s *Server) Reset() {
	s.remaining = s.budget
	s.lastReplenish = 0
	s.replQ.Reset()
}
