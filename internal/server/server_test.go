package server

import (
	"testing"

	"timedice/internal/vtime"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, vtime.MS(10), Polling); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(vtime.MS(5), 0, Polling); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := New(vtime.MS(11), vtime.MS(10), Polling); err == nil {
		t.Error("budget > period accepted")
	}
	if _, err := New(vtime.MS(1), vtime.MS(10), Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(vtime.MS(1), vtime.MS(10), Deferrable); err != nil {
		t.Errorf("valid server rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if Polling.String() != "polling" || Deferrable.String() != "deferrable" || Sporadic.String() != "sporadic" {
		t.Error("policy names")
	}
}

func TestInitialState(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Polling)
	if !s.Active() || s.Remaining() != vtime.MS(2) || s.LastReplenish() != 0 {
		t.Error("initial state wrong")
	}
	if s.Deadline() != vtime.Time(vtime.MS(10)) {
		t.Errorf("deadline = %v", s.Deadline())
	}
	if s.Utilization() != 0.2 {
		t.Errorf("utilization = %v", s.Utilization())
	}
}

func TestPeriodicReplenishment(t *testing.T) {
	for _, pol := range []Policy{Polling, Deferrable} {
		s := MustNew(vtime.MS(2), vtime.MS(10), pol)
		s.Consume(0, vtime.MS(2))
		if s.Active() {
			t.Fatalf("%v: active after full consumption", pol)
		}
		s.AdvanceTo(vtime.Time(vtime.MS(9)))
		if s.Active() {
			t.Fatalf("%v: replenished early", pol)
		}
		s.AdvanceTo(vtime.Time(vtime.MS(10)))
		if s.Remaining() != vtime.MS(2) {
			t.Fatalf("%v: not replenished at period boundary", pol)
		}
		if s.LastReplenish() != vtime.Time(vtime.MS(10)) {
			t.Fatalf("%v: lastReplenish = %v", pol, s.LastReplenish())
		}
	}
}

func TestMultiPeriodAdvance(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Deferrable)
	s.Consume(0, vtime.MS(1))
	s.AdvanceTo(vtime.Time(vtime.MS(35)))
	if s.Remaining() != vtime.MS(2) {
		t.Error("budget should be full after multiple periods")
	}
	if s.LastReplenish() != vtime.Time(vtime.MS(30)) {
		t.Errorf("lastReplenish = %v, want 30ms", s.LastReplenish())
	}
	if s.NextReplenish() != vtime.Time(vtime.MS(40)) {
		t.Errorf("nextReplenish = %v, want 40ms", s.NextReplenish())
	}
}

func TestPollingDiscardsIdleBudget(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Polling)
	if !s.NoteIdle(0) {
		t.Fatal("polling server should discard on idle")
	}
	if s.Active() {
		t.Fatal("still active after discard")
	}
	// Deferrable retains.
	d := MustNew(vtime.MS(2), vtime.MS(10), Deferrable)
	if d.NoteIdle(0) || !d.Active() {
		t.Fatal("deferrable server must retain idle budget")
	}
	// Sporadic retains.
	sp := MustNew(vtime.MS(2), vtime.MS(10), Sporadic)
	if sp.NoteIdle(0) || !sp.Active() {
		t.Fatal("sporadic server must retain idle budget")
	}
}

func TestSporadicChunkReplenishment(t *testing.T) {
	s := MustNew(vtime.MS(4), vtime.MS(10), Sporadic)
	// Consume 1ms at t=2 and 2ms at t=5.
	s.AdvanceTo(vtime.Time(vtime.MS(2)))
	s.Consume(vtime.Time(vtime.MS(2)), vtime.MS(1))
	s.AdvanceTo(vtime.Time(vtime.MS(5)))
	s.Consume(vtime.Time(vtime.MS(5)), vtime.MS(2))
	if s.Remaining() != vtime.MS(1) {
		t.Fatalf("remaining = %v", s.Remaining())
	}
	// First chunk replenishes at 12, second at 15.
	if s.NextReplenish() != vtime.Time(vtime.MS(10)) {
		// Period boundary bookkeeping keeps the analysis anchor; chunk is
		// at 12, periodic anchor at 10: NextReplenish is the earlier of the
		// chunk queue and the anchor-based period boundary.
		t.Fatalf("NextReplenish = %v, want 10ms (anchor)", s.NextReplenish())
	}
	s.AdvanceTo(vtime.Time(vtime.MS(12)))
	if s.Remaining() != vtime.MS(2) {
		t.Errorf("after first chunk replenish: %v, want 2ms", s.Remaining())
	}
	s.AdvanceTo(vtime.Time(vtime.MS(15)))
	if s.Remaining() != vtime.MS(4) {
		t.Errorf("after second chunk replenish: %v, want 4ms", s.Remaining())
	}
}

func TestSporadicCapsAtBudget(t *testing.T) {
	s := MustNew(vtime.MS(4), vtime.MS(10), Sporadic)
	s.Consume(0, vtime.MS(1))
	// The chunk alone would push remaining to 4 (3+1); cap holds at B.
	s.AdvanceTo(vtime.Time(vtime.MS(10)))
	if s.Remaining() != vtime.MS(4) {
		t.Errorf("remaining = %v, want capped at 4ms", s.Remaining())
	}
}

func TestConsumePanicsBeyondRemaining(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Polling)
	defer func() {
		if recover() == nil {
			t.Error("over-consumption should panic")
		}
	}()
	s.Consume(0, vtime.MS(3))
}

func TestRemainingUtilization(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Deferrable)
	if u := s.RemainingUtilization(0); u != 0.2 {
		t.Errorf("u at t=0: %v, want 0.2", u)
	}
	s.Consume(0, vtime.MS(1))
	// remaining 1ms, 5ms to deadline at t=5 → 0.2
	if u := s.RemainingUtilization(vtime.Time(vtime.MS(5))); u != 0.2 {
		t.Errorf("u at t=5: %v, want 0.2", u)
	}
	// At (or past) the deadline: zero.
	if u := s.RemainingUtilization(vtime.Time(vtime.MS(10))); u != 0 {
		t.Errorf("u at deadline: %v, want 0", u)
	}
}

func TestReset(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Sporadic)
	s.Consume(0, vtime.MS(2))
	s.AdvanceTo(vtime.Time(vtime.MS(25)))
	s.Reset()
	if s.Remaining() != vtime.MS(2) || s.LastReplenish() != 0 || s.NextReplenish() != vtime.Time(vtime.MS(10)) {
		t.Error("Reset incomplete")
	}
}

func TestBudgetConservationProperty(t *testing.T) {
	// Property: total consumption over k periods never exceeds k·B for the
	// periodic policies.
	for _, pol := range []Policy{Polling, Deferrable} {
		s := MustNew(vtime.MS(3), vtime.MS(10), pol)
		var consumed vtime.Duration
		now := vtime.Time(0)
		for step := 0; step < 1000; step++ {
			s.AdvanceTo(now)
			take := s.Remaining().Min(vtime.MS(1))
			s.Consume(now, take)
			consumed += take
			now = now.Add(vtime.FromFloatMS(0.7))
		}
		periods := vtime.FloorDiv(vtime.Duration(now), vtime.MS(10)) + 1
		if consumed > vtime.Duration(periods)*vtime.MS(3) {
			t.Errorf("%v: consumed %v over %d periods (budget 3ms)", pol, consumed, periods)
		}
	}
}
