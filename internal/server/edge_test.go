package server

import (
	"testing"

	"timedice/internal/vtime"
)

// obsRecorder captures observer callbacks for the edge-case tests.
type obsRecorder struct {
	repl []struct {
		at                vtime.Time
		amount, remaining vtime.Duration
	}
	depl []struct {
		at        vtime.Time
		discarded vtime.Duration
	}
}

func (o *obsRecorder) Replenished(at vtime.Time, amount, remaining vtime.Duration) {
	o.repl = append(o.repl, struct {
		at                vtime.Time
		amount, remaining vtime.Duration
	}{at, amount, remaining})
}

func (o *obsRecorder) Depleted(at vtime.Time, discarded vtime.Duration) {
	o.depl = append(o.depl, struct {
		at        vtime.Time
		discarded vtime.Duration
	}{at, discarded})
}

// TestDepleteExactlyAtBoundary exhausts the budget with a slice that ends
// exactly on the period boundary: the depletion and the boundary
// replenishment coincide in virtual time, and both must be visible (deplete
// first, then a full replenish at the same instant).
func TestDepleteExactlyAtBoundary(t *testing.T) {
	for _, pol := range []Policy{Polling, Deferrable} {
		s := MustNew(vtime.MS(2), vtime.MS(10), pol)
		rec := &obsRecorder{}
		s.SetObserver(rec)

		// Slice [8ms, 10ms) consumes the whole budget; it ends at the boundary.
		s.AdvanceTo(vtime.Time(vtime.MS(8)))
		s.Consume(vtime.Time(vtime.MS(8)), vtime.MS(2))
		if s.Remaining() != 0 {
			t.Fatalf("%v: remaining %v after full consumption", pol, s.Remaining())
		}
		if len(rec.depl) != 1 || rec.depl[0].at != vtime.Time(vtime.MS(10)) || rec.depl[0].discarded != 0 {
			t.Fatalf("%v: depletion events %+v, want one execution-deplete at 10ms", pol, rec.depl)
		}

		// The boundary itself restores the full budget — no dead period.
		s.AdvanceTo(vtime.Time(vtime.MS(10)))
		if s.Remaining() != vtime.MS(2) {
			t.Fatalf("%v: boundary replenish left %v", pol, s.Remaining())
		}
		if len(rec.repl) != 1 || rec.repl[0].at != vtime.Time(vtime.MS(10)) ||
			rec.repl[0].amount != vtime.MS(2) || rec.repl[0].remaining != vtime.MS(2) {
			t.Fatalf("%v: replenish events %+v, want full 2ms at 10ms", pol, rec.repl)
		}
		if s.Deadline() != vtime.Time(vtime.MS(20)) {
			t.Fatalf("%v: deadline %v after boundary, want 20ms", pol, s.Deadline())
		}
	}
}

// TestDeferrableBackToBackBurst is Strosnider's double-hit: a deferrable
// server that retains its budget to the very end of a period and replenishes
// at the boundary can supply 2B back-to-back — which the conservative
// analyses must (and do) account for. The ledger must permit the burst
// without ever exceeding B within a single period window.
func TestDeferrableBackToBackBurst(t *testing.T) {
	s := MustNew(vtime.MS(2), vtime.MS(10), Deferrable)

	// Idle through most of the period: deferrable retains.
	s.AdvanceTo(vtime.Time(vtime.MS(8)))
	if s.NoteIdle(vtime.Time(vtime.MS(8))) {
		t.Fatal("deferrable discarded budget on idle")
	}
	if s.Remaining() != vtime.MS(2) {
		t.Fatalf("retained %v, want full budget", s.Remaining())
	}

	// Burst 1: [8ms, 10ms) drains the retained budget right before the
	// boundary.
	s.Consume(vtime.Time(vtime.MS(8)), vtime.MS(2))
	if s.Active() {
		t.Fatal("active after draining retained budget")
	}

	// Burst 2: the boundary replenishes and the server can immediately run
	// [10ms, 12ms) — 4ms of supply in the contiguous window [8ms, 12ms).
	s.AdvanceTo(vtime.Time(vtime.MS(10)))
	if s.Remaining() != vtime.MS(2) {
		t.Fatalf("boundary replenish left %v", s.Remaining())
	}
	s.Consume(vtime.Time(vtime.MS(10)), vtime.MS(2))
	if s.Remaining() != 0 {
		t.Fatalf("remaining %v after back-to-back burst", s.Remaining())
	}

	// No further supply until the next boundary: the double hit cannot chain
	// into a triple.
	s.AdvanceTo(vtime.Time(vtime.MS(19)))
	if s.Active() {
		t.Fatal("budget appeared before the next boundary")
	}
	s.AdvanceTo(vtime.Time(vtime.MS(20)))
	if s.Remaining() != vtime.MS(2) {
		t.Fatal("next boundary did not replenish")
	}
}

// TestSporadicReplenishmentSplitting checks Sprunt's rule at chunk
// granularity: two consumptions at different instants replenish as two
// separate chunks, each one period after its own start — not merged at the
// period boundary.
func TestSporadicReplenishmentSplitting(t *testing.T) {
	s := MustNew(vtime.MS(3), vtime.MS(10), Sporadic)
	rec := &obsRecorder{}
	s.SetObserver(rec)

	// Chunk A: 1ms consumed starting at t=2ms → replenishes at 12ms.
	// Chunk B: 2ms consumed starting at t=5ms → replenishes at 15ms.
	s.Consume(vtime.Time(vtime.MS(2)), vtime.MS(1))
	s.Consume(vtime.Time(vtime.MS(5)), vtime.MS(2))
	if s.Remaining() != 0 {
		t.Fatalf("remaining %v after consuming full budget", s.Remaining())
	}
	// NextReplenish is anchored at min(chunk head, period boundary): the
	// 10ms boundary precedes chunk A, and the anchor is the conservative
	// floor the schedulability test may assume.
	if got := s.NextReplenish(); got != vtime.Time(vtime.MS(10)) {
		t.Fatalf("NextReplenish %v, want the 10ms boundary anchor", got)
	}

	// The boundary itself delivers nothing (sporadic budget follows the
	// chunks), and neither does any instant before chunk A's schedule.
	s.AdvanceTo(vtime.Time(vtime.MS(11)))
	if s.Remaining() != 0 {
		t.Fatalf("remaining %v at 11ms, want 0 (no chunk due yet)", s.Remaining())
	}

	// 12ms delivers only chunk A; chunk B stays queued.
	s.AdvanceTo(vtime.Time(vtime.MS(12)))
	if s.Remaining() != vtime.MS(1) {
		t.Fatalf("remaining %v at 12ms, want chunk A's 1ms only", s.Remaining())
	}
	if got := s.NextReplenish(); got != vtime.Time(vtime.MS(15)) {
		t.Fatalf("NextReplenish %v after chunk A, want chunk B at 15ms", got)
	}
	s.AdvanceTo(vtime.Time(vtime.MS(14)))
	if s.Remaining() != vtime.MS(1) {
		t.Fatalf("remaining %v at 14ms, chunk B delivered early", s.Remaining())
	}

	// Chunk B arrives on its own schedule.
	s.AdvanceTo(vtime.Time(vtime.MS(15)))
	if s.Remaining() != vtime.MS(3) {
		t.Fatalf("remaining %v at 15ms, want full budget restored", s.Remaining())
	}
	if len(rec.repl) != 2 ||
		rec.repl[0].amount != vtime.MS(1) || rec.repl[0].remaining != vtime.MS(1) ||
		rec.repl[1].amount != vtime.MS(2) || rec.repl[1].remaining != vtime.MS(3) {
		t.Fatalf("replenish events %+v, want two split chunks 1ms then 2ms", rec.repl)
	}
}

// TestMutationHookInert pins that non-mutation builds replenish the full
// budget (replenishShort must be zero unless the timedice_mutation tag is
// set — the mutation smoke test relies on the flip being the only change).
func TestMutationHookInert(t *testing.T) {
	if replenishShort != 0 {
		t.Skip("mutation build: replenishment deliberately shorted")
	}
	s := MustNew(vtime.MS(2), vtime.MS(10), Polling)
	s.Consume(0, vtime.MS(2))
	s.AdvanceTo(vtime.Time(vtime.MS(10)))
	if s.Remaining() != vtime.MS(2) {
		t.Fatalf("boundary replenish left %v, want the full budget", s.Remaining())
	}
}
