package server

// Snapshot/restore support: a Server's dynamic state as a plain value, plus
// deep cloning for engine forks. The static configuration (budget, period,
// policy) is deliberately not part of State — state is only ever restored
// into a server built with the identical configuration, and the engine's
// snapshot format pins that with a configuration fingerprint.

import (
	"fmt"

	"timedice/internal/eventq"
	"timedice/internal/vtime"
)

// State is the dynamic state of a Server: everything Reset clears. Repl holds
// the pending sporadic replenishment chunks in delivery order and is empty
// for the boundary-replenished policies.
type State struct {
	Remaining     vtime.Duration
	LastReplenish vtime.Time
	Repl          []eventq.Entry[vtime.Duration]
}

// SaveState captures the server's dynamic state, appending the replenishment
// entries to buf (pass nil, or a retained scratch to bound allocation). The
// server is not mutated.
func (s *Server) SaveState(buf []eventq.Entry[vtime.Duration]) State {
	return State{
		Remaining:     s.remaining,
		LastReplenish: s.lastReplenish,
		Repl:          s.replQ.AppendAll(buf),
	}
}

// CheckState reports whether st is a valid state for this server's
// configuration. It accepts exactly the states SaveState can produce (given
// the same configuration), so decoders can funnel untrusted values through it
// before mutating anything.
func (s *Server) CheckState(st State) error {
	if st.Remaining < 0 || st.Remaining > s.budget {
		return fmt.Errorf("server: remaining %v outside [0, %v]", st.Remaining, s.budget)
	}
	if st.LastReplenish < 0 {
		return fmt.Errorf("server: negative last replenish %v", st.LastReplenish)
	}
	if len(st.Repl) > 0 && s.policy != Sporadic {
		return fmt.Errorf("server: %v policy with %d pending replenishments", s.policy, len(st.Repl))
	}
	var prev vtime.Time
	for _, e := range st.Repl {
		if e.At < prev {
			return fmt.Errorf("server: replenishment queue out of delivery order (%v after %v)", e.At, prev)
		}
		if e.At < 0 {
			return fmt.Errorf("server: negative replenishment instant %v", e.At)
		}
		if e.Val <= 0 || e.Val > s.budget {
			return fmt.Errorf("server: replenishment chunk %v outside (0, %v]", e.Val, s.budget)
		}
		prev = e.At
	}
	return nil
}

// LoadState restores a state captured by SaveState on a server with the same
// configuration. On error the server is unchanged. No observer callbacks
// fire: restoring is not a lifecycle event.
func (s *Server) LoadState(st State) error {
	if err := s.CheckState(st); err != nil {
		return err
	}
	s.remaining = st.Remaining
	s.lastReplenish = st.LastReplenish
	s.replQ.Load(st.Repl)
	return nil
}

// Clone returns an independent copy of the server sharing no mutable memory
// with s. The observer is not carried over — the new owner installs its own —
// and the drain scratch starts empty (it regrows on first use).
func (s *Server) Clone() *Server {
	c := &Server{
		budget:        s.budget,
		period:        s.period,
		policy:        s.policy,
		remaining:     s.remaining,
		lastReplenish: s.lastReplenish,
	}
	s.replQ.CloneInto(&c.replQ)
	return c
}
