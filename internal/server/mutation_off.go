//go:build !timedice_mutation

package server

import "timedice/internal/vtime"

// replenishShort is the mutation-testing hook for the oracle suite: normal
// builds replenish boundary servers to the full budget. Building with
// -tags timedice_mutation shorts every boundary replenishment by a fixed
// amount (see mutation_on.go), an injected server bug that the check
// package's replenishment/starvation oracles must detect end-to-end.
const replenishShort vtime.Duration = 0
