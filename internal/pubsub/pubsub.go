// Package pubsub models the paper's overt inter-partition communication
// (§II): an OS-layer message-passing service that requires no
// synchronization between partitions. Tasks publish messages when their jobs
// complete (the natural point at which a real-time task emits its outputs —
// the ROS publish of §III-e), and subscribers receive them at their own next
// job completion, so communication never blocks either side.
//
// The bus records every message, which models the §III-e observation that
// overt channels "can easily be monitored": the authorized information flow
// is fully auditable, which is exactly why the adversary needs a covert one.
package pubsub

import (
	"fmt"

	"timedice/internal/vtime"
)

// Message is one published datum.
type Message struct {
	Topic     string
	Publisher string // partition name
	Payload   any
	Published vtime.Time
}

// Delivery is a message received by a subscriber, with latency bookkeeping.
type Delivery struct {
	Message
	Subscriber string
	Delivered  vtime.Time
}

// Latency returns the publish-to-delivery delay.
func (d Delivery) Latency() vtime.Duration { return d.Delivered.Sub(d.Published) }

// Bus is the broker. It is driven entirely by the simulation's completion
// callbacks; it has no goroutines and no locks (the engine is
// single-threaded).
type Bus struct {
	// queues[topic][subscriber] = pending messages.
	queues map[string]map[string][]Message
	// audit is the monitor's log of every publish.
	audit []Message
	// deliveries counts per (topic, subscriber).
	delivered map[string]int
	// OnDeliver, when non-nil, observes every delivery.
	OnDeliver func(Delivery)
}

// NewBus returns an empty broker.
func NewBus() *Bus {
	return &Bus{
		queues:    make(map[string]map[string][]Message),
		delivered: make(map[string]int),
	}
}

// Subscribe registers subscriber (a partition name) on topic. Messages
// published after the subscription are queued until collected.
func (b *Bus) Subscribe(topic, subscriber string) {
	subs, ok := b.queues[topic]
	if !ok {
		subs = make(map[string][]Message)
		b.queues[topic] = subs
	}
	if _, ok := subs[subscriber]; !ok {
		subs[subscriber] = nil
	}
}

// Publish enqueues payload for every subscriber of topic at instant now.
func (b *Bus) Publish(topic, publisher string, payload any, now vtime.Time) {
	msg := Message{Topic: topic, Publisher: publisher, Payload: payload, Published: now}
	b.audit = append(b.audit, msg)
	for sub := range b.queues[topic] {
		b.queues[topic][sub] = append(b.queues[topic][sub], msg)
	}
}

// Collect drains the pending messages of subscriber on topic at instant now
// (the subscriber's job completion), reporting each as a Delivery.
func (b *Bus) Collect(topic, subscriber string, now vtime.Time) []Delivery {
	subs, ok := b.queues[topic]
	if !ok {
		return nil
	}
	msgs := subs[subscriber]
	if len(msgs) == 0 {
		return nil
	}
	subs[subscriber] = nil
	out := make([]Delivery, len(msgs))
	for i, m := range msgs {
		out[i] = Delivery{Message: m, Subscriber: subscriber, Delivered: now}
		b.delivered[topic+"/"+subscriber]++
		if b.OnDeliver != nil {
			b.OnDeliver(out[i])
		}
	}
	return out
}

// Audit returns the monitor's view: every message ever published, in order.
// The returned slice is a copy.
func (b *Bus) Audit() []Message {
	out := make([]Message, len(b.audit))
	copy(out, b.audit)
	return out
}

// Delivered returns the delivery count for topic/subscriber.
func (b *Bus) Delivered(topic, subscriber string) int {
	return b.delivered[topic+"/"+subscriber]
}

// String summarizes the bus state.
func (b *Bus) String() string {
	return fmt.Sprintf("pubsub.Bus{topics: %d, published: %d}", len(b.queues), len(b.audit))
}
