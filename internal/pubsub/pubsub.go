// Package pubsub models the paper's overt inter-partition communication
// (§II): an OS-layer message-passing service that requires no
// synchronization between partitions. Tasks publish messages when their jobs
// complete (the natural point at which a real-time task emits its outputs —
// the ROS publish of §III-e), and subscribers receive them at their own next
// job completion, so communication never blocks either side.
//
// The bus records every message, which models the §III-e observation that
// overt channels "can easily be monitored": the authorized information flow
// is fully auditable, which is exactly why the adversary needs a covert one.
package pubsub

import (
	"fmt"

	"timedice/internal/vtime"
)

// Message is one published datum.
type Message struct {
	Topic     string
	Publisher string // partition name
	Payload   any
	Published vtime.Time
}

// Delivery is a message received by a subscriber, with latency bookkeeping.
type Delivery struct {
	Message
	Subscriber string
	Delivered  vtime.Time
}

// Latency returns the publish-to-delivery delay.
func (d Delivery) Latency() vtime.Duration { return d.Delivered.Sub(d.Published) }

// Bus is the broker. It is driven entirely by the simulation's completion
// callbacks; it has no goroutines and no locks (the engine is
// single-threaded).
type Bus struct {
	// queues[topic][subscriber] = pending messages.
	queues map[string]map[string][]Message
	// limits[topic/subscriber] = max pending messages (0 = unbounded).
	limits map[string]int
	// dropped counts overwritten messages per (topic, subscriber).
	dropped map[string]int
	// audit is the monitor's log of every publish.
	audit []Message
	// deliveries counts per (topic, subscriber).
	delivered map[string]int
	// OnDeliver, when non-nil, observes every delivery.
	OnDeliver func(Delivery)
}

// NewBus returns an empty broker.
func NewBus() *Bus {
	return &Bus{
		queues:    make(map[string]map[string][]Message),
		limits:    make(map[string]int),
		dropped:   make(map[string]int),
		delivered: make(map[string]int),
	}
}

// Subscribe registers subscriber (a partition name) on topic with an
// unbounded queue. Messages published after the subscription are queued
// until collected.
func (b *Bus) Subscribe(topic, subscriber string) {
	b.SubscribeBuffered(topic, subscriber, 0)
}

// SubscribeBuffered registers subscriber on topic with a bounded pending
// queue of at most limit messages (limit <= 0 means unbounded, identical to
// Subscribe). When a publish would overflow the bound, the OLDEST pending
// message is dropped to admit the new one — a stalled consumer loses
// history, never freshness — and the drop is tallied (Dropped). This models
// a real OS message service's finite mailboxes: the overt channel degrades
// under backpressure instead of consuming unbounded kernel memory. Calling
// it again adjusts the limit of an existing subscription (an already
// overlong queue is trimmed oldest-first on the next publish).
func (b *Bus) SubscribeBuffered(topic, subscriber string, limit int) {
	subs, ok := b.queues[topic]
	if !ok {
		subs = make(map[string][]Message)
		b.queues[topic] = subs
	}
	if _, ok := subs[subscriber]; !ok {
		subs[subscriber] = nil
	}
	if limit <= 0 {
		delete(b.limits, topic+"/"+subscriber)
	} else {
		b.limits[topic+"/"+subscriber] = limit
	}
}

// Publish enqueues payload for every subscriber of topic at instant now,
// applying each subscription's queue bound (drop-oldest).
func (b *Bus) Publish(topic, publisher string, payload any, now vtime.Time) {
	msg := Message{Topic: topic, Publisher: publisher, Payload: payload, Published: now}
	b.audit = append(b.audit, msg)
	for sub := range b.queues[topic] {
		q := append(b.queues[topic][sub], msg)
		if limit := b.limits[topic+"/"+sub]; limit > 0 && len(q) > limit {
			drop := len(q) - limit
			b.dropped[topic+"/"+sub] += drop
			q = q[drop:]
		}
		b.queues[topic][sub] = q
	}
}

// Dropped returns how many messages the bound of topic/subscriber has
// discarded so far (always 0 for unbounded subscriptions).
func (b *Bus) Dropped(topic, subscriber string) int {
	return b.dropped[topic+"/"+subscriber]
}

// Pending returns the number of queued, not-yet-collected messages for
// topic/subscriber.
func (b *Bus) Pending(topic, subscriber string) int {
	return len(b.queues[topic][subscriber])
}

// Collect drains the pending messages of subscriber on topic at instant now
// (the subscriber's job completion), reporting each as a Delivery.
func (b *Bus) Collect(topic, subscriber string, now vtime.Time) []Delivery {
	subs, ok := b.queues[topic]
	if !ok {
		return nil
	}
	msgs := subs[subscriber]
	if len(msgs) == 0 {
		return nil
	}
	subs[subscriber] = nil
	out := make([]Delivery, len(msgs))
	for i, m := range msgs {
		out[i] = Delivery{Message: m, Subscriber: subscriber, Delivered: now}
		b.delivered[topic+"/"+subscriber]++
		if b.OnDeliver != nil {
			b.OnDeliver(out[i])
		}
	}
	return out
}

// Audit returns the monitor's view: every message ever published, in order.
// The returned slice is a copy.
func (b *Bus) Audit() []Message {
	out := make([]Message, len(b.audit))
	copy(out, b.audit)
	return out
}

// Delivered returns the delivery count for topic/subscriber.
func (b *Bus) Delivered(topic, subscriber string) int {
	return b.delivered[topic+"/"+subscriber]
}

// String summarizes the bus state.
func (b *Bus) String() string {
	return fmt.Sprintf("pubsub.Bus{topics: %d, published: %d}", len(b.queues), len(b.audit))
}
