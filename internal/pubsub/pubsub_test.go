package pubsub

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/task"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestBasicPublishSubscribe(t *testing.T) {
	b := NewBus()
	b.Subscribe("steer", "behavior")
	b.Publish("steer", "vision", 42, vtime.Time(vtime.MS(5)))
	got := b.Collect("steer", "behavior", vtime.Time(vtime.MS(8)))
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	if d.Payload != 42 || d.Publisher != "vision" || d.Latency() != vtime.MS(3) {
		t.Errorf("delivery %+v", d)
	}
	// Drained.
	if len(b.Collect("steer", "behavior", vtime.Time(vtime.MS(9)))) != 0 {
		t.Error("queue not drained")
	}
	if b.Delivered("steer", "behavior") != 1 {
		t.Error("delivery counter")
	}
}

func TestNoSubscriptionNoDelivery(t *testing.T) {
	b := NewBus()
	b.Publish("loc", "planner", "secret", 0)
	if got := b.Collect("loc", "logger", 0); got != nil {
		t.Errorf("unsubscribed collect returned %v", got)
	}
	// The overt message is still auditable by the monitor.
	if len(b.Audit()) != 1 {
		t.Error("audit log missing the publish")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b := NewBus()
	b.Subscribe("cmd", "a")
	b.Subscribe("cmd", "b")
	b.Publish("cmd", "src", "x", 0)
	if len(b.Collect("cmd", "a", 1)) != 1 || len(b.Collect("cmd", "b", 1)) != 1 {
		t.Error("fan-out failed")
	}
}

func TestOnDeliverHook(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", "s")
	var seen []Delivery
	b.OnDeliver = func(d Delivery) { seen = append(seen, d) }
	b.Publish("t", "p", 1, 0)
	b.Publish("t", "p", 2, 0)
	b.Collect("t", "s", 5)
	if len(seen) != 2 {
		t.Errorf("hook saw %d deliveries", len(seen))
	}
}

// TestOvertChannelOnCarPlatform wires the bus into the simulated car: the
// vision task publishes a steering command per job; the behavior task
// collects at its own completions. Latencies stay bounded by the publishing
// and collecting tasks' periods, under NoRandom and TimeDice alike.
func TestOvertChannelOnCarPlatform(t *testing.T) {
	spec := workload.Car()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	bus.Subscribe("steer", "behavior")

	var maxLatency vtime.Duration
	received := 0
	built.Sched["vision"].OnComplete = func(c task.Completion) {
		bus.Publish("steer", "vision", c.Job.Index, c.Finish)
	}
	built.Sched["behavior"].OnComplete = func(c task.Completion) {
		for _, d := range bus.Collect("steer", "behavior", c.Finish) {
			received++
			if d.Latency() > maxLatency {
				maxLatency = d.Latency()
			}
		}
	}
	sys, err := engine.New(built.Partitions, sched.FixedPriority{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(vtime.Time(2 * vtime.Second))
	if received < 30 {
		t.Fatalf("only %d steering commands delivered", received)
	}
	// Bound: one publisher period (50ms) + one collector period (20ms) plus
	// response times — 100ms is a generous envelope.
	if maxLatency > vtime.MS(100) {
		t.Errorf("max overt latency %v", maxLatency)
	}
	if len(bus.Audit()) < received {
		t.Error("audit log incomplete")
	}
}
