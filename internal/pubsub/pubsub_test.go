package pubsub

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/task"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestBasicPublishSubscribe(t *testing.T) {
	b := NewBus()
	b.Subscribe("steer", "behavior")
	b.Publish("steer", "vision", 42, vtime.Time(vtime.MS(5)))
	got := b.Collect("steer", "behavior", vtime.Time(vtime.MS(8)))
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	if d.Payload != 42 || d.Publisher != "vision" || d.Latency() != vtime.MS(3) {
		t.Errorf("delivery %+v", d)
	}
	// Drained.
	if len(b.Collect("steer", "behavior", vtime.Time(vtime.MS(9)))) != 0 {
		t.Error("queue not drained")
	}
	if b.Delivered("steer", "behavior") != 1 {
		t.Error("delivery counter")
	}
}

func TestNoSubscriptionNoDelivery(t *testing.T) {
	b := NewBus()
	b.Publish("loc", "planner", "secret", 0)
	if got := b.Collect("loc", "logger", 0); got != nil {
		t.Errorf("unsubscribed collect returned %v", got)
	}
	// The overt message is still auditable by the monitor.
	if len(b.Audit()) != 1 {
		t.Error("audit log missing the publish")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b := NewBus()
	b.Subscribe("cmd", "a")
	b.Subscribe("cmd", "b")
	b.Publish("cmd", "src", "x", 0)
	if len(b.Collect("cmd", "a", 1)) != 1 || len(b.Collect("cmd", "b", 1)) != 1 {
		t.Error("fan-out failed")
	}
}

func TestOnDeliverHook(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", "s")
	var seen []Delivery
	b.OnDeliver = func(d Delivery) { seen = append(seen, d) }
	b.Publish("t", "p", 1, 0)
	b.Publish("t", "p", 2, 0)
	b.Collect("t", "s", 5)
	if len(seen) != 2 {
		t.Errorf("hook saw %d deliveries", len(seen))
	}
}

// TestOvertChannelOnCarPlatform wires the bus into the simulated car: the
// vision task publishes a steering command per job; the behavior task
// collects at its own completions. Latencies stay bounded by the publishing
// and collecting tasks' periods, under NoRandom and TimeDice alike.
func TestOvertChannelOnCarPlatform(t *testing.T) {
	spec := workload.Car()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	bus.Subscribe("steer", "behavior")

	var maxLatency vtime.Duration
	received := 0
	built.Sched["vision"].OnComplete = func(c task.Completion) {
		bus.Publish("steer", "vision", c.Job.Index, c.Finish)
	}
	built.Sched["behavior"].OnComplete = func(c task.Completion) {
		for _, d := range bus.Collect("steer", "behavior", c.Finish) {
			received++
			if d.Latency() > maxLatency {
				maxLatency = d.Latency()
			}
		}
	}
	sys, err := engine.New(built.Partitions, sched.FixedPriority{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(vtime.Time(2 * vtime.Second))
	if received < 30 {
		t.Fatalf("only %d steering commands delivered", received)
	}
	// Bound: one publisher period (50ms) + one collector period (20ms) plus
	// response times — 100ms is a generous envelope.
	if maxLatency > vtime.MS(100) {
		t.Errorf("max overt latency %v", maxLatency)
	}
	if len(bus.Audit()) < received {
		t.Error("audit log incomplete")
	}
}

// TestSlowSubscriberDropOldest pins the backpressure semantics of a bounded
// subscription under a stalled consumer: the queue holds at most the limit,
// overflow discards the OLDEST pending message (freshness wins), the drops
// are tallied, and an unbounded subscriber on the same topic is unaffected.
func TestSlowSubscriberDropOldest(t *testing.T) {
	b := NewBus()
	b.SubscribeBuffered("lidar", "stalled", 3)
	b.Subscribe("lidar", "healthy")

	// The stalled consumer never collects while ten messages arrive.
	for i := 0; i < 10; i++ {
		b.Publish("lidar", "sensor", i, vtime.Time(vtime.MS(int64(i))))
	}
	if got := b.Pending("lidar", "stalled"); got != 3 {
		t.Fatalf("stalled queue holds %d, limit is 3", got)
	}
	if got := b.Dropped("lidar", "stalled"); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
	if got := b.Dropped("lidar", "healthy"); got != 0 {
		t.Fatalf("unbounded subscriber dropped %d, want 0", got)
	}
	if got := b.Pending("lidar", "healthy"); got != 10 {
		t.Fatalf("unbounded queue holds %d, want all 10", got)
	}

	// When the stalled consumer finally wakes, it receives exactly the
	// newest `limit` messages, in publish order.
	got := b.Collect("lidar", "stalled", vtime.Time(vtime.MS(20)))
	if len(got) != 3 {
		t.Fatalf("collected %d messages, want 3", len(got))
	}
	for k, d := range got {
		if want := 7 + k; d.Payload != want {
			t.Errorf("delivery %d payload = %v, want %d (newest three, oldest dropped)", k, d.Payload, want)
		}
	}
	// The audit log still records every publish: drops shed consumer-side
	// backlog, never the monitor's view.
	if got := len(b.Audit()); got != 10 {
		t.Fatalf("audit holds %d messages, want all 10", got)
	}
}

// TestSlowSubscriberRecovers: after draining, a bounded subscription keeps
// working and only re-drops once the bound is exceeded again.
func TestSlowSubscriberRecovers(t *testing.T) {
	b := NewBus()
	b.SubscribeBuffered("ticks", "s", 2)
	for i := 0; i < 5; i++ {
		b.Publish("ticks", "p", i, vtime.Time(vtime.MS(int64(i))))
	}
	if got := b.Dropped("ticks", "s"); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	b.Collect("ticks", "s", vtime.Time(vtime.MS(6)))

	// Two more fit exactly: no new drops.
	b.Publish("ticks", "p", 5, vtime.Time(vtime.MS(7)))
	b.Publish("ticks", "p", 6, vtime.Time(vtime.MS(8)))
	if got := b.Dropped("ticks", "s"); got != 3 {
		t.Fatalf("within-bound publishes dropped: %d, want still 3", got)
	}
	got := b.Collect("ticks", "s", vtime.Time(vtime.MS(9)))
	if len(got) != 2 || got[0].Payload != 5 || got[1].Payload != 6 {
		t.Fatalf("recovered collect = %v", got)
	}
	if b.Delivered("ticks", "s") != 4 {
		t.Fatalf("delivered = %d, want 4 (2 + 2; drops are not deliveries)", b.Delivered("ticks", "s"))
	}
}

// TestSubscribeBufferedAdjustLimit: re-subscribing adjusts the bound; a
// zero limit returns the subscription to unbounded.
func TestSubscribeBufferedAdjustLimit(t *testing.T) {
	b := NewBus()
	b.SubscribeBuffered("t", "s", 1)
	b.Publish("t", "p", "a", 0)
	b.Publish("t", "p", "b", 0)
	if got := b.Dropped("t", "s"); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	b.SubscribeBuffered("t", "s", 0) // now unbounded
	b.Publish("t", "p", "c", 0)
	b.Publish("t", "p", "d", 0)
	if got := b.Pending("t", "s"); got != 3 {
		t.Fatalf("pending after unbounding = %d, want 3", got)
	}
	if got := b.Dropped("t", "s"); got != 1 {
		t.Fatalf("unbounded publishes dropped: %d, want still 1", got)
	}
}
