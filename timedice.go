package timedice

import (
	"timedice/internal/analysis"
	"timedice/internal/blinder"
	"timedice/internal/core"
	"timedice/internal/covert"
	"timedice/internal/detect"
	"timedice/internal/engine"
	"timedice/internal/experiments"
	"timedice/internal/ml"
	"timedice/internal/model"
	"timedice/internal/multicore"
	"timedice/internal/policies"
	"timedice/internal/pubsub"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/server"
	"timedice/internal/stats"
	"timedice/internal/task"
	"timedice/internal/telemetry"
	"timedice/internal/trace"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// Time and Duration are the simulator's virtual time base: integer
// microseconds from the simulation start.
type (
	Time     = vtime.Time
	Duration = vtime.Duration
)

// Duration units.
const (
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// MS and US build durations from milliseconds / microseconds.
func MS(ms int64) Duration { return vtime.MS(ms) }

// US builds a Duration from microseconds.
func US(us int64) Duration { return vtime.US(us) }

// System description types.
type (
	// SystemSpec declares a complete system: partitions in decreasing
	// priority order.
	SystemSpec = model.SystemSpec
	// PartitionSpec declares one partition (budget B, period T, task set).
	PartitionSpec = model.PartitionSpec
	// TaskSpec declares one sporadic task (period p, WCET e).
	TaskSpec = model.TaskSpec
	// Built is a realized system with handles to live tasks and schedulers.
	Built = model.Built
)

// TaskCompletion is delivered to local-scheduler completion callbacks
// (Built.Sched[name].OnComplete) for every finished job.
type TaskCompletion = task.Completion

// ServerPolicy selects the budget-server algorithm of a partition.
type ServerPolicy = server.Policy

// Budget-server policies.
const (
	// PollingServer discards idle budget (LITMUS^RT sporadic-polling
	// behaviour; the default).
	PollingServer = server.Polling
	// DeferrableServer retains unused budget until the end of the period.
	DeferrableServer = server.Deferrable
	// SporadicServer replenishes consumed chunks one period after use.
	SporadicServer = server.Sporadic
)

// Simulation types.
type (
	// System is the hierarchical-scheduling simulator.
	System = engine.System
	// Segment is one schedule-trace interval.
	Segment = engine.Segment
	// GlobalPolicy decides which partition runs at each decision point.
	GlobalPolicy = engine.GlobalPolicy
	// Recorder collects and renders schedule traces.
	Recorder = trace.Recorder
)

// PolicyKind names a global scheduling policy.
type PolicyKind = policies.Kind

// Global scheduling policies.
const (
	// NoRandom is the default fixed-priority scheduler.
	NoRandom = policies.NoRandom
	// TimeDiceU is TimeDice with uniform random selection.
	TimeDiceU = policies.TimeDiceU
	// TimeDiceW is TimeDice with weighted random selection (the paper's
	// default).
	TimeDiceW = policies.TimeDiceW
	// TDMA is the static-partitioning reference scheduler.
	TDMA = policies.TDMA
)

// TimeDicePolicy exposes the core randomized policy for direct use and
// inspection (per-decision statistics, custom quantum or selection mode).
type TimeDicePolicy = core.Policy

// NewTimeDicePolicy builds a TimeDice policy with options (see
// internal/core: WithQuantum, WithSelection, WithRand re-exported below).
var NewTimeDicePolicy = core.NewPolicy

// Policy options.
var (
	WithQuantum   = core.WithQuantum
	WithSelection = core.WithSelection
)

// Selection modes for TimeDice's Step 2.
const (
	SelectWeighted = core.SelectWeighted
	SelectUniform  = core.SelectUniform
)

// FixedPriority is the NoRandom policy value.
type FixedPriority = sched.FixedPriority

// SystemOption customizes NewSystem / NewBuiltSystem beyond the required
// (spec, policy, seed) triple.
type SystemOption func(*systemOptions)

type systemOptions struct {
	sink           telemetry.Sink
	quantum        Duration
	measureLatency bool
}

// WithTelemetry attaches a telemetry sink to the built system: every
// scheduling event (arrivals, dispatches, completions, deadline misses,
// budget depletion/replenishment, decisions, inversion windows, slices) is
// emitted as a structured TelemetryEvent. With no sink attached the engine
// pays only nil checks.
func WithTelemetry(sink TelemetrySink) SystemOption {
	return func(o *systemOptions) { o.sink = sink }
}

// WithPolicyQuantum overrides MIN_INV_SIZE for the TimeDice policies
// (default 1 ms).
func WithPolicyQuantum(q Duration) SystemOption {
	return func(o *systemOptions) { o.quantum = q }
}

// WithLatencyMeasurement turns on per-decision wall-clock latency
// measurement into Counters.PolicyLatency (a streaming histogram).
func WithLatencyMeasurement() SystemOption {
	return func(o *systemOptions) { o.measureLatency = true }
}

// NewSystem builds spec and wires it to the policy kind with the given seed.
func NewSystem(spec SystemSpec, kind PolicyKind, seed uint64, opts ...SystemOption) (*System, error) {
	sys, _, err := NewBuiltSystem(spec, kind, seed, opts...)
	return sys, err
}

// NewBuiltSystem is NewSystem but also returns the Built handles so callers
// can instrument tasks (execution hooks, completion callbacks) before
// running.
func NewBuiltSystem(spec SystemSpec, kind PolicyKind, seed uint64, opts ...SystemOption) (*System, *Built, error) {
	var o systemOptions
	for _, opt := range opts {
		opt(&o)
	}
	built, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{Quantum: o.quantum})
	if err != nil {
		return nil, nil, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	if o.sink != nil {
		sys.AttachTelemetry(o.sink)
	}
	sys.MeasureLatency = o.measureLatency
	return sys, built, nil
}

// ReadSystem parses a JSON system specification (see internal/model for the
// schema; durations in milliseconds).
var ReadSystem = model.ReadSystem

// Workload constructors.
var (
	// TableI builds the paper's Table I benchmark (α budget fraction,
	// β WCET fraction).
	TableI = workload.TableI
	// TableIBase is Table I at α=16%, β=3% (80% utilization).
	TableIBase = workload.TableIBase
	// TableILight is the light-load variant (40% utilization).
	TableILight = workload.TableILight
	// Car is the Fig. 5 self-driving-car platform.
	Car = workload.Car
	// ThreePartition is the small Fig. 6 example.
	ThreePartition = workload.ThreePartition
	// ScaleSystem duplicates a system n× at constant total utilization.
	ScaleSystem = workload.Scale
)

// Analysis (§IV-B).
type AnalysisResult = analysis.TaskResult

var (
	// Analyze computes the analytic WCRT of every task under both
	// schedulers (the Table II "Anal." columns).
	Analyze = analysis.AnalyzeSystem
	// PartitionSchedulable tests Definition 1 for one partition.
	PartitionSchedulable = analysis.PartitionSchedulable
	// SystemSchedulable tests Definition 1 for every partition.
	SystemSchedulable = analysis.SystemSchedulable
	// WCRTNoRandom / WCRTTimeDice compute one task's analytic WCRT;
	// WCRTNoRandomDeferrable adds the deferrable back-to-back interference.
	WCRTNoRandom           = analysis.WCRTNoRandom
	WCRTTimeDice           = analysis.WCRTTimeDice
	WCRTNoRandomDeferrable = analysis.WCRTNoRandomDeferrable
	// SupplyBound / DemandBound / CompositionalSchedulable are the periodic
	// resource model's sbf/rbf machinery (Shin & Lee), whose supply bound is
	// exactly the TimeDice worst case.
	SupplyBound              = analysis.SupplyBound
	DemandBound              = analysis.DemandBound
	CompositionalSchedulable = analysis.CompositionalSchedulable
	// AssignPriorities finds a schedulable priority order (Audsley's OPA);
	// ReorderSystem applies it.
	AssignPriorities = analysis.AssignPriorities
	ReorderSystem    = analysis.Reorder
)

// Covert channel (§III).
type (
	// ChannelConfig describes a covert-channel experiment.
	ChannelConfig = covert.Config
	// ChannelResult is its outcome (accuracies, capacity, distributions).
	ChannelResult = covert.Result
	// Observation is one monitoring window's receiver-side evidence.
	Observation = covert.Observation
)

// SenderStrategy selects the sender's modulation family.
type SenderStrategy = covert.SenderStrategy

// Sender modulation strategies.
const (
	// AmplitudeModulation scales how much budget each sender job consumes
	// (the paper's Fig. 3 scheme).
	AmplitudeModulation = covert.AmplitudeModulation
	// PulsePosition encodes the symbol in which sender job bursts.
	PulsePosition = covert.PulsePosition
)

// RunChannel executes a covert-channel experiment; optional trainers add
// learning-based (execution-vector) receivers.
var RunChannel = covert.Run

// CovertMessageConfig transmits a real payload over the channel (repetition
// code + interleaving); CovertMessageResult reports recovery and goodput.
type (
	CovertMessageConfig = covert.MessageConfig
	CovertMessageResult = covert.MessageResult
)

// SendCovertMessage profiles the channel and transmits the payload.
var SendCovertMessage = covert.SendMessage

// Learners for the execution-vector receiver.
type (
	// Trainer fits a binary classifier.
	Trainer = ml.Trainer
	// Classifier predicts labels for execution vectors.
	Classifier = ml.Classifier
	// SVM is the paper's RBF-kernel support vector machine.
	SVM = ml.SVM
	// LogReg is a logistic-regression baseline.
	LogReg = ml.LogReg
	// Forest is a random-forest learner.
	Forest = ml.Forest
	// KNN is a k-nearest-neighbors baseline.
	KNN = ml.KNN
	// NaiveBayes is a Bernoulli naive Bayes classifier for execution vectors.
	NaiveBayes = ml.NaiveBayes
	// Confusion is a binary confusion matrix with derived metrics.
	Confusion = ml.Confusion
)

// MLEvaluate fills a confusion matrix from a classifier's predictions.
var MLEvaluate = ml.Evaluate

// CrossValidate estimates a trainer's accuracy by k-fold cross validation.
var CrossValidate = ml.CrossValidate

// BLINDER baseline (§V-C).
type (
	// OrderChannelConfig parameterizes the Fig. 18 task-order channel.
	OrderChannelConfig = blinder.OrderChannelConfig
	// OrderChannelResult reports both decoders' accuracies.
	OrderChannelResult = blinder.OrderChannelResult
)

var (
	// BlinderTransform applies BLINDER's release quantization to one
	// partition of a built system.
	BlinderTransform = blinder.Transform
	// RunOrderChannel simulates the Fig. 18 scenario.
	RunOrderChannel = blinder.RunOrderChannel
)

// Experiments: one harness per table/figure of the paper (see DESIGN.md).
type ExperimentScale = experiments.Scale

var (
	// QuickScale and FullScale are preset experiment sizes.
	QuickScale = experiments.Quick
	FullScale  = experiments.Full

	Fig04      = experiments.Fig04
	Fig06      = experiments.Fig06
	Fig12      = experiments.Fig12
	Fig13      = experiments.Fig13
	Fig14      = experiments.Fig14
	Fig15      = experiments.Fig15
	Fig16      = experiments.Fig16
	Fig18      = experiments.Fig18
	Table02    = experiments.Table02
	Table03    = experiments.Table03
	Overhead   = experiments.Overhead
	CarChannel = experiments.CarChannel
	// Ablation sweeps quantum, server policy, selection mode, multi-bit
	// levels, and noise sensitivity.
	Ablation = experiments.Ablation
	// Rate sweeps the monitoring-window length and reports covert bits/s.
	Rate = experiments.Rate
	// Naive contrasts TimeDice with unprincipled randomization (budget
	// shortfalls).
	Naive = experiments.Naive
	// Randomness measures slot entropy and budget-exhaustion spread.
	Randomness = experiments.Randomness
	// UtilizationSweep extends the base/light loads to a curve.
	UtilizationSweep = experiments.UtilizationSweep
)

// Overt inter-partition communication (§II): an auditable OS-layer
// publish–subscribe service driven by job completions.
type (
	// Bus is the message broker.
	Bus = pubsub.Bus
	// BusMessage is one published datum; BusDelivery a received one.
	BusMessage  = pubsub.Message
	BusDelivery = pubsub.Delivery
)

// NewBus returns an empty overt-channel broker.
var NewBus = pubsub.NewBus

// Defender-side monitoring: flag covert senders from their per-period budget
// consumption (policy-invariant — see internal/detect).
type (
	// ConsumptionObserver records per-partition per-period CPU consumption.
	ConsumptionObserver = detect.ConsumptionObserver
	// SenderRanking is one partition's modulation score.
	SenderRanking = detect.Ranking
)

var (
	// NewConsumptionObserver builds the monitor for a system spec.
	NewConsumptionObserver = detect.NewConsumptionObserver
	// BimodalityScore scores a consumption series in [0,1].
	BimodalityScore = detect.BimodalityScore
)

// Multicore extension: partitioned multiprocessor scheduling.
type (
	// CoreAssignment maps partitions onto cores.
	CoreAssignment = multicore.Assignment
	// MulticoreSystem runs one hierarchical scheduler per core.
	MulticoreSystem = multicore.System
	// CrossCoreChannelConfig parameterizes the cross-core channel check.
	CrossCoreChannelConfig = multicore.ChannelConfig
)

var (
	// FirstFitDecreasing packs partitions onto cores by utilization.
	FirstFitDecreasing = multicore.FirstFitDecreasing
	// NewMulticore builds one engine per core from an assignment.
	NewMulticore = multicore.New
	// CrossCoreChannel measures the covert channel across a placement.
	CrossCoreChannel = multicore.Channel
)

// RunChannelSeeds aggregates a channel experiment over several seeds.
var RunChannelSeeds = covert.RunSeeds

// RunChannelSeedsParallel is RunChannelSeeds over a bounded worker pool.
var RunChannelSeedsParallel = covert.RunSeedsParallel

// RunChannelSeedsStream is RunChannelSeedsParallel with constant-memory
// streaming aggregation (per-worker quantile sketches merged at fan-in).
var RunChannelSeedsStream = covert.RunSeedsStream

// ChannelAggregate is RunChannelSeeds' result.
type ChannelAggregate = covert.Aggregate

// ChannelStreamAggregate is RunChannelSeedsStream's result.
type ChannelStreamAggregate = covert.StreamAggregate

// Statistics helpers used by the harness outputs.
type (
	// Histogram is a fixed-width histogram.
	Histogram = stats.Histogram
	// BoxPlot is a five-number summary.
	BoxPlot = stats.BoxPlot
)

// Telemetry: the structured observability layer (see internal/telemetry for
// the event taxonomy and metrics catalogue).
type (
	// TelemetryEvent is one structured scheduler event.
	TelemetryEvent = telemetry.Event
	// TelemetryEventKind discriminates TelemetryEvent records.
	TelemetryEventKind = telemetry.Kind
	// TelemetrySink receives emitted events (attach via WithTelemetry or
	// System.AttachTelemetry).
	TelemetrySink = telemetry.Sink
	// TelemetryFunc adapts a function to a TelemetrySink.
	TelemetryFunc = telemetry.Func
	// TelemetryMulti fans events out to several sinks.
	TelemetryMulti = telemetry.Multi
	// TelemetryRecorder buffers the whole event stream in memory.
	TelemetryRecorder = telemetry.Recorder
	// TelemetrySummary is the roll-up Summarize computes from a stream.
	TelemetrySummary = telemetry.Summary
	// MetricsRegistry holds named counters, gauges, and streaming
	// fixed-bucket histograms with deterministic text/CSV dumps.
	MetricsRegistry = telemetry.Registry
	// MetricsHistogram is a constant-memory streaming histogram.
	MetricsHistogram = telemetry.Histogram
	// MetricsCollector aggregates the event stream into a MetricsRegistry.
	MetricsCollector = telemetry.Collector
)

// Telemetry event kinds.
const (
	EventTaskArrival     = telemetry.KindTaskArrival
	EventTaskStart       = telemetry.KindTaskStart
	EventTaskPreempt     = telemetry.KindTaskPreempt
	EventTaskComplete    = telemetry.KindTaskComplete
	EventDeadlineMiss    = telemetry.KindDeadlineMiss
	EventBudgetDeplete   = telemetry.KindBudgetDeplete
	EventBudgetReplenish = telemetry.KindBudgetReplenish
	EventDecision        = telemetry.KindDecision
	EventInversionOpen   = telemetry.KindInversionOpen
	EventInversionClose  = telemetry.KindInversionClose
	EventSlice           = telemetry.KindSlice
)

// Telemetry constructors and exporters.
var (
	// NewTelemetryRecorder returns an empty in-memory event recorder.
	NewTelemetryRecorder = telemetry.NewRecorder
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = telemetry.NewRegistry
	// NewMetricsCollector builds an event→metrics bridge for the given
	// partition names.
	NewMetricsCollector = telemetry.NewCollector
	// NewJSONLSink streams events to a writer as JSONL.
	NewJSONLSink = telemetry.NewJSONLSink
	// ReadEventJSONL parses a JSONL event log back into events.
	ReadEventJSONL = telemetry.ReadJSONL
	// WriteChromeTrace exports a recorded event stream as Chrome trace-event
	// JSON, loadable in Perfetto or chrome://tracing.
	WriteChromeTrace = telemetry.WriteChromeTrace
	// SummarizeEvents folds an event stream into a TelemetrySummary.
	SummarizeEvents = telemetry.Summarize
)

// NewRecorder records schedule segments overlapping [from, until).
func NewRecorder(from, until Time) *Recorder { return trace.NewRecorder(from, until) }

// RenderGantt renders a recorded trace as an ASCII Gantt chart.
func RenderGantt(r *Recorder, names []string, cell Duration) string {
	return r.Gantt(names, cell)
}
