package timedice_test

import (
	"fmt"
	"io"
	"strings"

	"timedice"
)

// ExampleSystemSchedulable shows the offline precondition check.
func ExampleSystemSchedulable() {
	fmt.Println(timedice.SystemSchedulable(timedice.TableIBase()))
	fmt.Println(timedice.SystemSchedulable(timedice.Car()))
	// Output:
	// true
	// true
}

// ExampleReadSystem parses a JSON system definition.
func ExampleReadSystem() {
	spec, err := timedice.ReadSystem(strings.NewReader(`{
	  "name": "demo",
	  "partitions": [
	    {"name": "P1", "periodMillis": 20, "budgetMillis": 4,
	     "tasks": [{"name": "t1", "periodMillis": 40, "wcetMillis": 2}]}
	  ]
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d partition(s), utilization %.0f%%\n",
		spec.Name, len(spec.Partitions), 100*spec.Utilization())
	// Output:
	// demo: 1 partition(s), utilization 20%
}

// ExampleWCRTTimeDice computes one task's worst-case response time under the
// randomized scheduler (Eq. 4 of the paper).
func ExampleWCRTTimeDice() {
	spec := timedice.TableIBase()
	fmt.Printf("%.1fms\n", timedice.WCRTTimeDice(spec, 0, 0).Milliseconds())
	// Output:
	// 34.8ms
}

// ExampleBimodalityScore scores budget-consumption series: a modulating
// covert sender is near 1, steady consumption is 0.
func ExampleBimodalityScore() {
	sender := []float64{4.8, 0.01, 4.8, 0.01, 4.8, 0.01, 4.8, 0.01}
	steady := []float64{3.2, 3.2, 3.2, 3.2, 3.2, 3.2, 3.2, 3.2}
	fmt.Printf("sender %.2f steady %.2f\n",
		timedice.BimodalityScore(sender), timedice.BimodalityScore(steady))
	// Output:
	// sender 1.00 steady 0.00
}

// ExampleAssignPriorities repairs an unschedulable declaration order.
func ExampleAssignPriorities() {
	spec, err := timedice.ReadSystem(strings.NewReader(`{
	  "name": "reversed",
	  "partitions": [
	    {"name": "slow", "periodMillis": 100, "budgetMillis": 40,
	     "tasks": [{"name": "s", "periodMillis": 100, "wcetMillis": 40}]},
	    {"name": "fast", "periodMillis": 10, "budgetMillis": 5,
	     "tasks": [{"name": "f", "periodMillis": 10, "wcetMillis": 5}]}
	  ]
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	order, err := timedice.AssignPriorities(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	re, _ := timedice.ReorderSystem(spec, order)
	fmt.Println("top priority:", re.Partitions[0].Name)
	// Output:
	// top priority: fast
}

// ExampleSupplyBound evaluates the periodic resource model's worst-case
// supply — the TimeDice supply bound.
func ExampleSupplyBound() {
	B, T := timedice.MS(2), timedice.MS(10)
	for _, t := range []timedice.Duration{timedice.MS(16), timedice.MS(18), timedice.MS(28)} {
		fmt.Printf("sbf(%v) = %v\n", t, timedice.SupplyBound(B, T, t))
	}
	// Output:
	// sbf(16.000ms) = 0.000ms
	// sbf(18.000ms) = 2.000ms
	// sbf(28.000ms) = 4.000ms
}

// ExampleFirstFitDecreasing packs the Table I partitions onto cores.
func ExampleFirstFitDecreasing() {
	asg, err := timedice.FirstFitDecreasing(timedice.TableIBase(), 0.40, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("cores:", asg.Cores)
	// Output:
	// cores: 3
}

// ExampleFig06 regenerates the paper's schedule-trace figure
// programmatically (output suppressed here; see cmd/timedice-sim for the
// rendered version).
func ExampleFig06() {
	res, err := timedice.Fig06(timedice.QuickScale(), io.Discard)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("TimeDice fragments the schedule:", res.TimeDiceSwitches > res.NoRandomSwitches)
	// Output:
	// TimeDice fragments the schedule: true
}
