module timedice

go 1.22
