package timedice_test

import (
	"fmt"
	"testing"

	"timedice"
)

func TestPublicNewSystem(t *testing.T) {
	for _, kind := range []timedice.PolicyKind{timedice.NoRandom, timedice.TimeDiceU, timedice.TimeDiceW, timedice.TDMA} {
		sys, err := timedice.NewSystem(timedice.ThreePartition(), kind, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		sys.Run(timedice.Time(timedice.MS(500)))
		if sys.Counters.Decisions == 0 {
			t.Errorf("%v: no decisions", kind)
		}
	}
}

func TestPublicNewBuiltSystemHooks(t *testing.T) {
	sys, built, err := timedice.NewBuiltSystem(timedice.ThreePartition(), timedice.TimeDiceW, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	built.Sched["P1"].OnComplete = func(c timedice.TaskCompletion) { done++ }
	sys.Run(timedice.Time(timedice.Second))
	if done == 0 {
		t.Error("completion hook never fired")
	}
}

func TestPublicAnalyze(t *testing.T) {
	rows, err := timedice.Analyze(timedice.TableIBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NoRandom != timedice.MS(18) || rows[0].TimeDice.Milliseconds() != 34.8 {
		t.Errorf("t1,1 analytic values wrong: %+v", rows[0])
	}
	if !timedice.SystemSchedulable(timedice.TableIBase()) {
		t.Error("Table I must be schedulable")
	}
	if !timedice.PartitionSchedulable(timedice.TableIBase(), 4) {
		t.Error("Π5 must be schedulable")
	}
}

func TestPublicRunChannel(t *testing.T) {
	res, err := timedice.RunChannel(timedice.ChannelConfig{
		Spec: timedice.TableIBase(), Sender: 1, Receiver: 3,
		ProfileWindows: 100, TestWindows: 200, Seed: 3,
	}, timedice.KNN{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTAccuracy < 0.7 {
		t.Errorf("accuracy %.3f", res.RTAccuracy)
	}
	if _, ok := res.VecAccuracy["knn"]; !ok {
		t.Error("learner missing")
	}
}

func TestPublicOrderChannel(t *testing.T) {
	res, err := timedice.RunOrderChannel(timedice.OrderChannelConfig{Windows: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderAccuracy < 0.9 {
		t.Errorf("order accuracy %.3f", res.OrderAccuracy)
	}
}

func TestPublicRecorder(t *testing.T) {
	sys, err := timedice.NewSystem(timedice.ThreePartition(), timedice.NoRandom, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := timedice.NewRecorder(0, timedice.Time(timedice.MS(50)))
	sys.TraceFn = rec.Hook()
	sys.Run(timedice.Time(timedice.MS(50)))
	g := timedice.RenderGantt(rec, []string{"P1", "P2", "P3"}, timedice.Millisecond)
	if len(g) == 0 || g == "(empty trace)\n" {
		t.Error("empty gantt from public API")
	}
}

func TestPublicCustomPolicy(t *testing.T) {
	// Direct use of the TimeDice policy type with options.
	pol := timedice.NewTimeDicePolicy(
		timedice.WithQuantum(timedice.MS(2)),
		timedice.WithSelection(timedice.SelectUniform),
	)
	if pol.Name() != "TimeDiceU" || pol.Quantum() != timedice.MS(2) {
		t.Error("custom policy options not applied")
	}
}

func TestPublicWCRTFunctions(t *testing.T) {
	spec := timedice.TableIBase()
	nr := timedice.WCRTNoRandom(spec, 0, 0)
	td := timedice.WCRTTimeDice(spec, 0, 0)
	if nr != timedice.MS(18) || td >= timedice.MS(35) || td <= timedice.MS(34) {
		t.Errorf("WCRTs: nr=%v td=%v", nr, td)
	}
}

// ExampleNewSystem demonstrates building and running a system.
func ExampleNewSystem() {
	spec := timedice.ThreePartition()
	sys, err := timedice.NewSystem(spec, timedice.TimeDiceW, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(timedice.Time(timedice.Second))
	fmt.Println("partitions:", len(sys.Partitions))
	fmt.Println("schedulable:", timedice.SystemSchedulable(spec))
	// Output:
	// partitions: 3
	// schedulable: true
}

// ExampleAnalyze demonstrates the Table II analytic WCRT computation.
func ExampleAnalyze() {
	rows, err := timedice.Analyze(timedice.TableIBase())
	if err != nil {
		fmt.Println(err)
		return
	}
	r := rows[0]
	fmt.Printf("%s: NoRandom %.1fms, TimeDice %.1fms\n",
		r.Task, r.NoRandom.Milliseconds(), r.TimeDice.Milliseconds())
	// Output:
	// t1,1: NoRandom 18.0ms, TimeDice 34.8ms
}
