// Package timedice is a Go reproduction of "TimeDice:
// Schedulability-Preserving Priority Inversion for Mitigating Covert Timing
// Channels Between Real-time Partitions" (Yoon, Kim, Bradford, Shao — DSN
// 2022).
//
// It provides, as a library on top of a deterministic discrete-event
// hierarchical-scheduling simulator:
//
//   - the TIMEDICE randomized global scheduler (candidate search via
//     busy-interval schedulability tests, uniform or weighted random
//     selection), together with the baselines it is compared against (the
//     fixed-priority NoRandom scheduler, an ARINC-653-style TDMA scheduler,
//     and the BLINDER local-schedule transform);
//   - the covert timing channel of the paper's §III: budget-modulating
//     sender, response-time and execution-vector receivers, profiling and
//     Bayesian/ML decoding, and information-theoretic channel-capacity
//     measurement;
//   - the offline schedulability analyses of §IV-B (worst-case response
//     times under both schedulers), which reproduce the paper's Table II
//     analytic values exactly;
//   - experiment harnesses that regenerate every table and figure of the
//     paper's evaluation (see the experiments index in DESIGN.md).
//
// # Quick start
//
//	spec := timedice.TableI(0.16, 0.03)               // the paper's Table I system
//	sys, err := timedice.NewSystem(spec, timedice.TimeDiceW, 1)
//	if err != nil { ... }
//	sys.Run(timedice.Time(10 * timedice.Second))       // simulate 10 seconds
//
// To run a covert-channel experiment end to end:
//
//	res, err := timedice.RunChannel(timedice.ChannelConfig{
//	    Spec: spec, Sender: 1, Receiver: 3, Policy: timedice.TimeDiceW,
//	}, timedice.SVM{})
//
// See the examples/ directory for complete programs.
package timedice
